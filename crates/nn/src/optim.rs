//! Gradient-descent optimizers and clipping utilities.
//!
//! The paper's training algorithms pin the optimizer choice: Adam for
//! vanilla/conditional GAN training (Algorithms 1, 3) and RMSProp for
//! Wasserstein/DPGAN training (Algorithms 2, 4). Weight clipping
//! implements the `clip(θ, -c, c)` step of WGAN; per-sample gradient
//! clipping bounds sensitivity for DPGAN.

use daisy_tensor::{Param, Tensor};

/// A first-order optimizer bound to a fixed parameter set.
pub trait Optimizer {
    /// Applies one update from the currently accumulated gradients.
    fn step(&mut self);

    /// The parameters this optimizer updates.
    fn params(&self) -> &[Param];

    /// Zeroes all gradients.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Changes the learning rate at runtime (used by the training
    /// resilience layer to decay the step size after a rollback).
    fn set_lr(&mut self, lr: f32);

    /// Snapshot of the optimizer's internal state (moment estimates,
    /// step counters) as plain tensors, so training can roll back to a
    /// previous point without momentum carrying the failure forward.
    /// The learning rate is intentionally *not* part of the state: a
    /// rollback restores moments but keeps any post-rollback LR decay.
    fn state(&self) -> Vec<Tensor>;

    /// Restores a snapshot taken by [`Optimizer::state`]. Panics if the
    /// snapshot arity/shape does not match this optimizer.
    fn set_state(&mut self, state: &[Tensor]);
}

/// Plain stochastic gradient descent (kept for reference/testing).
pub struct Sgd {
    params: Vec<Param>,
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        Sgd { params, lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let lr = self.lr;
        for p in &self.params {
            p.update(|v, g| v.axpy(-lr, g));
        }
    }

    fn params(&self) -> &[Param] {
        &self.params
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state(&self) -> Vec<Tensor> {
        Vec::new()
    }

    fn set_state(&mut self, state: &[Tensor]) {
        assert!(state.is_empty(), "SGD carries no optimizer state");
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    params: Vec<Param>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u32,
}

impl Adam {
    /// Creates Adam with the conventional betas (0.9, 0.999).
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        Adam::with_betas(params, lr, 0.9, 0.999)
    }

    /// Creates Adam with explicit betas (DCGAN-style training often uses
    /// `beta1 = 0.5`).
    pub fn with_betas(params: Vec<Param>, lr: f32, beta1: f32, beta2: f32) -> Self {
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            m,
            v,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        for (i, p) in self.params.iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            p.update(|value, grad| {
                for ((mi, vi), (&gi, xi)) in m
                    .data_mut()
                    .iter_mut()
                    .zip(v.data_mut())
                    .zip(grad.data().iter().zip(value.data_mut()))
                {
                    *mi = b1 * *mi + (1.0 - b1) * gi;
                    *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *xi -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            });
        }
    }

    fn params(&self) -> &[Param] {
        &self.params
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state(&self) -> Vec<Tensor> {
        // [t] followed by first and second moments, in parameter order.
        let mut out = vec![Tensor::from_slice(&[self.t as f32])];
        out.extend(self.m.iter().cloned());
        out.extend(self.v.iter().cloned());
        out
    }

    fn set_state(&mut self, state: &[Tensor]) {
        let n = self.params.len();
        assert_eq!(state.len(), 1 + 2 * n, "Adam state arity mismatch");
        self.t = state[0].data()[0] as u32;
        for i in 0..n {
            assert_eq!(state[1 + i].shape(), self.m[i].shape());
            assert_eq!(state[1 + n + i].shape(), self.v[i].shape());
            self.m[i] = state[1 + i].clone();
            self.v[i] = state[1 + n + i].clone();
        }
    }
}

/// RMSProp (Tieleman & Hinton), the optimizer mandated by WGAN.
pub struct RmsProp {
    params: Vec<Param>,
    lr: f32,
    alpha: f32,
    eps: f32,
    sq: Vec<Tensor>,
}

impl RmsProp {
    /// Creates RMSProp with the conventional smoothing `alpha = 0.99`.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let sq = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        RmsProp {
            params,
            lr,
            alpha: 0.99,
            eps: 1e-8,
            sq,
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self) {
        let (lr, alpha, eps) = (self.lr, self.alpha, self.eps);
        for (i, p) in self.params.iter().enumerate() {
            let sq = &mut self.sq[i];
            p.update(|value, grad| {
                for (si, (&gi, xi)) in sq
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data().iter().zip(value.data_mut()))
                {
                    *si = alpha * *si + (1.0 - alpha) * gi * gi;
                    *xi -= lr * gi / (si.sqrt() + eps);
                }
            });
        }
    }

    fn params(&self) -> &[Param] {
        &self.params
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state(&self) -> Vec<Tensor> {
        self.sq.clone()
    }

    fn set_state(&mut self, state: &[Tensor]) {
        assert_eq!(state.len(), self.sq.len(), "RMSProp state arity mismatch");
        for (sq, s) in self.sq.iter_mut().zip(state) {
            assert_eq!(s.shape(), sq.shape());
            *sq = s.clone();
        }
    }
}

/// Clamps every weight into `[-c, c]` — the WGAN Lipschitz surrogate
/// (Algorithm 2, line 8).
pub fn clip_weights(params: &[Param], c: f32) {
    assert!(c > 0.0, "clip bound must be positive");
    for p in params {
        p.update(|v, _| v.map_inplace(|x| x.clamp(-c, c)));
    }
}

/// Rescales all gradients so their global L2 norm is at most
/// `max_norm`; returns the pre-clip norm. Used by DPGAN to bound
/// gradient sensitivity before noise addition.
pub fn clip_grad_norm(params: &[Param], max_norm: f32) -> f32 {
    let total: f32 = params.iter().map(|p| p.grad().norm_sq()).sum::<f32>().sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params {
            let scaled = p.grad().mul_scalar(scale);
            p.zero_grad();
            p_add_grad(p, &scaled);
        }
    }
    total
}

/// Adds Gaussian noise `N(0, sigma^2)` to every gradient — the DPGAN
/// noise mechanism (Algorithm 4, line 8).
pub fn add_grad_noise(params: &[Param], sigma: f32, rng: &mut daisy_tensor::Rng) {
    for p in params {
        let noise = Tensor::randn(&p.shape(), rng).mul_scalar(sigma);
        p_add_grad(p, &noise);
    }
}

fn p_add_grad(p: &Param, delta: &Tensor) {
    // Param exposes gradient accumulation only through backward; route a
    // manual deposit through a trivial graph so the invariant "gradients
    // only come from accumulate" holds in one place.
    let v = p.var();
    let seed = delta.clone();
    v.backward_with(seed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_tensor::{Rng, Var};

    fn quadratic_loss(p: &Param) -> daisy_tensor::Var {
        // L = mean((x - 3)^2): minimum at 3.
        p.var().add_scalar(-3.0).sqr().mean()
    }

    fn optimize(mut opt: impl Optimizer, steps: usize) -> f32 {
        for _ in 0..steps {
            opt.zero_grad();
            let p = &opt.params()[0];
            quadratic_loss(p).backward();
            opt.step();
        }
        opt.params()[0].value().mean()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Param::new(Tensor::zeros(&[4]));
        let x = optimize(Sgd::new(vec![p], 0.2), 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Param::new(Tensor::zeros(&[4]));
        let x = optimize(Adam::new(vec![p], 0.1), 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let p = Param::new(Tensor::zeros(&[4]));
        let x = optimize(RmsProp::new(vec![p], 0.05), 300);
        assert!((x - 3.0).abs() < 5e-2, "x = {x}");
    }

    #[test]
    fn adam_faster_than_sgd_on_ill_conditioned() {
        // L = x0^2 + 100 x1^2 from (1, 1): adaptive scaling should reach
        // the optimum where plain SGD with a safe lr crawls.
        let loss = |p: &Param| {
            let x = p.var();
            let w = Var::constant(Tensor::from_slice(&[1.0, 100.0]));
            x.sqr().mul(&w).sum()
        };
        let run = |mut opt: Box<dyn Optimizer>| {
            for _ in 0..200 {
                opt.zero_grad();
                loss(&opt.params()[0]).backward();
                opt.step();
            }
            opt.params()[0].value().norm()
        };
        let sgd_final = run(Box::new(Sgd::new(
            vec![Param::new(Tensor::ones(&[2]))],
            0.004,
        )));
        let adam_final = run(Box::new(Adam::new(
            vec![Param::new(Tensor::ones(&[2]))],
            0.05,
        )));
        assert!(
            adam_final < sgd_final,
            "adam {adam_final} vs sgd {sgd_final}"
        );
    }

    #[test]
    fn weight_clipping_bounds_weights() {
        let p = Param::new(Tensor::from_slice(&[-5.0, 0.3, 5.0]));
        clip_weights(std::slice::from_ref(&p), 0.5);
        assert_eq!(p.value().data(), &[-0.5, 0.3, 0.5]);
    }

    #[test]
    fn grad_norm_clipping() {
        let p = Param::new(Tensor::zeros(&[2]));
        p.var().mul_scalar(3.0).sum().backward(); // grad = [3, 3]
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((pre - (18.0f32).sqrt()).abs() < 1e-4);
        assert!((p.grad().norm() - 1.0).abs() < 1e-4);
        // Under the bound: untouched.
        let q = Param::new(Tensor::zeros(&[2]));
        q.var().mul_scalar(0.1).sum().backward();
        clip_grad_norm(std::slice::from_ref(&q), 1.0);
        assert!((q.grad().norm() - (0.02f32).sqrt()).abs() < 1e-4);
    }

    #[test]
    fn optimizer_state_roundtrip_restores_trajectory() {
        // Stepping from a restored (value, state) pair must reproduce the
        // exact trajectory — the property rollback recovery relies on.
        let run = |make: &dyn Fn(Vec<Param>) -> Box<dyn Optimizer>| {
            let p = Param::new(Tensor::ones(&[4]));
            let mut opt = make(vec![p]);
            for _ in 0..5 {
                opt.zero_grad();
                quadratic_loss(&opt.params()[0]).backward();
                opt.step();
            }
            let value = opt.params()[0].value();
            let state = opt.state();
            // Diverge for a few steps, then roll back.
            for _ in 0..3 {
                opt.zero_grad();
                quadratic_loss(&opt.params()[0]).backward();
                opt.step();
            }
            opt.params()[0].set_value(value.clone());
            opt.set_state(&state);
            opt.zero_grad();
            quadratic_loss(&opt.params()[0]).backward();
            opt.step();
            let after_rollback = opt.params()[0].value();

            // Reference: never diverged.
            let q = Param::new(Tensor::ones(&[4]));
            let mut reference = make(vec![q]);
            for _ in 0..6 {
                reference.zero_grad();
                quadratic_loss(&reference.params()[0]).backward();
                reference.step();
            }
            (after_rollback, reference.params()[0].value())
        };
        for make in [
            (&|p| Box::new(Adam::new(p, 0.05)) as Box<dyn Optimizer>)
                as &dyn Fn(Vec<Param>) -> Box<dyn Optimizer>,
            &|p| Box::new(RmsProp::new(p, 0.05)) as Box<dyn Optimizer>,
            &|p| Box::new(Sgd::new(p, 0.05)) as Box<dyn Optimizer>,
        ] {
            let (rolled, reference) = run(make);
            assert_eq!(rolled.data(), reference.data());
        }
    }

    #[test]
    fn set_lr_changes_step_size() {
        let p = Param::new(Tensor::zeros(&[2]));
        let mut opt = Sgd::new(vec![p], 1.0);
        assert_eq!(opt.lr(), 1.0);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
        opt.zero_grad();
        opt.params()[0].var().sum().backward(); // grad = [1, 1]
        opt.step();
        assert_eq!(opt.params()[0].value().data(), &[-0.5, -0.5]);
    }

    #[test]
    fn grad_noise_perturbs() {
        let mut rng = Rng::seed_from_u64(0);
        let p = Param::new(Tensor::zeros(&[16]));
        add_grad_noise(std::slice::from_ref(&p), 1.0, &mut rng);
        assert!(p.grad().norm() > 0.0);
    }
}
