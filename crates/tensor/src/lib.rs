//! # daisy-tensor
//!
//! Dense `f32` tensors, deterministic random number generation, and
//! reverse-mode automatic differentiation — the substrate under the
//! neural networks of the Daisy relational-data-synthesis study.
//!
//! The crate is dependency-free and CPU-only by design: the paper's
//! experiments compare *model and algorithm structure*, which this
//! substrate reproduces exactly; raw device throughput is out of scope.
//!
//! ## Layout
//! - [`rng`] — xoshiro256++ RNG with normal/Laplace/weighted sampling.
//! - [`tensor`] — the [`Tensor`] type and constructors.
//! - [`ops`] / [`linalg`] / [`conv`] — elementwise math, reductions,
//!   matmul, convolution primitives.
//! - [`autodiff`] — [`Var`]/[`Param`] computation graph with
//!   backpropagation.
//!
//! ## Example
//! ```
//! use daisy_tensor::{Param, Rng, Tensor};
//!
//! let mut rng = Rng::seed_from_u64(0);
//! let w = Param::new(Tensor::randn(&[4, 2], &mut rng));
//! let x = daisy_tensor::Var::constant(Tensor::randn(&[8, 4], &mut rng));
//! let loss = x.matmul(&w.var()).tanh().sqr().mean();
//! loss.backward();
//! assert_eq!(w.grad().shape(), &[4, 2]);
//! ```

pub mod autodiff;
pub mod conv;
pub mod linalg;
pub mod ops;
pub mod rng;
pub mod tensor;

pub use autodiff::{Param, Var};
pub use rng::Rng;
pub use tensor::Tensor;
