//! # daisy-tensor
//!
//! Dense `f32` tensors, deterministic random number generation, and
//! reverse-mode automatic differentiation — the substrate under the
//! neural networks of the Daisy relational-data-synthesis study.
//!
//! The crate is dependency-free and CPU-only, but not single-threaded:
//! the hot kernels (matmul variants, im2col convolution, batched
//! elementwise and reduction ops) run on a persistent worker pool
//! ([`pool`]) sized from `std::thread::available_parallelism` and
//! overridable with `DAISY_THREADS`. Results are bit-identical for any
//! thread count (see the [`pool`] determinism contract), so parallelism
//! never costs reproducibility.
//!
//! ## Layout
//! - [`rng`] — xoshiro256++ RNG with normal/Laplace/weighted sampling
//!   and [`Rng::fork`]-based stream splitting.
//! - [`tensor`] — the [`Tensor`] type and constructors.
//! - [`ops`] / [`linalg`] / [`conv`] — elementwise math, reductions,
//!   matmul, convolution primitives.
//! - [`autodiff`] — [`Var`]/[`Param`] computation graph with
//!   backpropagation.
//! - [`pool`] — the worker pool behind the parallel kernels.
//!
//! ## Example
//! ```
//! use daisy_tensor::{Param, Rng, Tensor};
//!
//! let mut rng = Rng::seed_from_u64(0);
//! let w = Param::new(Tensor::randn(&[4, 2], &mut rng));
//! let x = daisy_tensor::Var::constant(Tensor::randn(&[8, 4], &mut rng));
//! let loss = x.matmul(&w.var()).tanh().sqr().mean();
//! loss.backward();
//! assert_eq!(w.grad().shape(), &[4, 2]);
//! ```

// `deny` (not `forbid`) so the worker pool alone can opt back in: its
// scoped-task dispatch needs two audited unsafe blocks (see
// `pool.rs`). Every other module is unsafe-free, machine-enforced.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod autodiff;
pub mod conv;
pub mod linalg;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod tensor;

pub use autodiff::{Param, Var};
pub use rng::{Rng, RngState};
pub use tensor::Tensor;
