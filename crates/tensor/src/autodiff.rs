//! Reverse-mode automatic differentiation.
//!
//! [`Var`] wraps a [`Tensor`] in a dynamically built computation graph.
//! Each operation records a backward closure that maps the output
//! gradient to gradients for its parents; [`Var::backward`] walks the
//! graph in reverse construction order (node ids are monotonically
//! increasing, so descending id order is a valid reverse-topological
//! order) and accumulates gradients into [`Param`] leaves.
//!
//! The design goals, in order: correctness (every op is covered by a
//! finite-difference test), simplicity (owned tensors, no lifetimes in
//! the graph), and just enough operator coverage for the MLP / LSTM /
//! DCGAN generators and discriminators of the paper.
//!
//! ## Parallelism
//!
//! The graph itself is single-threaded by design (`Rc`/`RefCell`
//! nodes); parallelism lives *inside* the tensor kernels each node
//! calls. The backward walk therefore parallelizes automatically: the
//! matmul backward runs the row-partitioned `matmul_nt`/`matmul_tn`,
//! the conv backward runs the batch-parallel gradient primitives, and
//! elementwise backward closures run the chunked `map`/`zip` — all on
//! the worker pool in [`crate::pool`], all bit-identical for any
//! thread count.

use crate::conv::{
    conv2d, conv2d_grad_input, conv2d_grad_weight, conv_out_dim, conv_transpose_out_dim,
};
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A trainable parameter: a tensor plus a shared gradient accumulator.
///
/// Modules hold `Param`s; every forward pass lifts them into graph
/// leaves with [`Param::var`], and `backward` deposits gradients here,
/// where optimizers read them.
#[derive(Clone)]
pub struct Param {
    inner: Rc<ParamInner>,
}

struct ParamInner {
    value: RefCell<Tensor>,
    grad: RefCell<Tensor>,
}

impl Param {
    /// Wraps a tensor as a trainable parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            inner: Rc::new(ParamInner {
                value: RefCell::new(value),
                grad: RefCell::new(grad),
            }),
        }
    }

    /// Snapshot of the current value.
    pub fn value(&self) -> Tensor {
        self.inner.value.borrow().clone()
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.value.borrow().shape().to_vec()
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.inner.value.borrow().numel()
    }

    /// Snapshot of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.inner.grad.borrow_mut().fill(0.0);
    }

    /// Applies an in-place update `value = f(value, grad)`.
    pub fn update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let grad = self.inner.grad.borrow();
        let mut value = self.inner.value.borrow_mut();
        f(&mut value, &grad);
    }

    /// Overwrites the value (used by weight clipping and checkpoint
    /// restore).
    pub fn set_value(&self, value: Tensor) {
        assert_eq!(
            value.shape(),
            self.inner.value.borrow().shape(),
            "set_value shape mismatch"
        );
        *self.inner.value.borrow_mut() = value;
    }

    /// Lifts the parameter into a computation graph leaf.
    pub fn var(&self) -> Var {
        Var::make(self.value(), Vec::new(), None, Some(self.clone()))
    }

    fn accumulate(&self, grad: &Tensor) {
        self.inner.grad.borrow_mut().add_assign(grad);
    }

    /// True if both handles refer to the same underlying parameter.
    pub fn ptr_eq(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for Param {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Param{:?}", self.inner.value.borrow().shape())
    }
}

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    id: u64,
    value: Tensor,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    param: Option<Param>,
}

/// A node in the computation graph.
#[derive(Clone)]
pub struct Var {
    node: Rc<Node>,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var{:?}", self.node.value.shape())
    }
}

impl Var {
    fn make(
        value: Tensor,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
        param: Option<Param>,
    ) -> Var {
        Var {
            node: Rc::new(Node {
                id: fresh_id(),
                value,
                parents,
                backward,
                param,
            }),
        }
    }

    /// A constant leaf (no gradient flows into it).
    pub fn constant(value: Tensor) -> Var {
        Var::make(value, Vec::new(), None, None)
    }

    /// The value at this node.
    #[inline]
    pub fn value(&self) -> &Tensor {
        &self.node.value
    }

    /// Shape of the value.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        self.node.value.shape()
    }

    /// Detaches the value from the graph (gradient stops here).
    pub fn detach(&self) -> Var {
        Var::constant(self.node.value.clone())
    }

    fn unary(&self, value: Tensor, backward: impl Fn(&Tensor) -> Tensor + 'static) -> Var {
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |g| vec![backward(g)])),
            None,
        )
    }

    fn binary(
        &self,
        other: &Var,
        value: Tensor,
        backward: impl Fn(&Tensor) -> (Tensor, Tensor) + 'static,
    ) -> Var {
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(move |g| {
                let (ga, gb) = backward(g);
                vec![ga, gb]
            })),
            None,
        )
    }

    // ----- elementwise arithmetic -----

    /// Elementwise addition.
    pub fn add(&self, other: &Var) -> Var {
        let v = self.value().add(other.value());
        self.binary(other, v, |g| (g.clone(), g.clone()))
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Var) -> Var {
        let v = self.value().sub(other.value());
        self.binary(other, v, |g| (g.clone(), g.neg()))
    }

    /// Elementwise multiplication.
    pub fn mul(&self, other: &Var) -> Var {
        let v = self.value().mul(other.value());
        let a = self.value().clone();
        let b = other.value().clone();
        self.binary(other, v, move |g| (g.mul(&b), g.mul(&a)))
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        self.unary(self.value().add_scalar(s), |g| g.clone())
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Var {
        self.unary(self.value().mul_scalar(s), move |g| g.mul_scalar(s))
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.mul_scalar(-1.0)
    }

    /// Elementwise square.
    pub fn sqr(&self) -> Var {
        let x = self.value().clone();
        self.unary(self.value().sqr(), move |g| g.mul(&x).mul_scalar(2.0))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let y = self.value().sqrt();
        let yc = y.clone();
        self.unary(y, move |g| g.zip(&yc, |gi, yi| gi * 0.5 / yi.max(1e-12)))
    }

    /// Natural logarithm with an epsilon floor for stability.
    pub fn ln_eps(&self, eps: f32) -> Var {
        let x = self.value().clone();
        self.unary(self.value().map(|v| (v + eps).ln()), move |g| {
            g.zip(&x, move |gi, xi| gi / (xi + eps))
        })
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let y = self.value().map(f32::exp);
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc))
    }

    // ----- activations -----

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let x = self.value().clone();
        self.unary(self.value().map(|v| v.max(0.0)), move |g| {
            g.zip(&x, |gi, xi| if xi > 0.0 { gi } else { 0.0 })
        })
    }

    /// Leaky ReLU with slope `alpha` for negative inputs.
    pub fn leaky_relu(&self, alpha: f32) -> Var {
        let x = self.value().clone();
        self.unary(
            self.value()
                .map(move |v| if v > 0.0 { v } else { alpha * v }),
            move |g| g.zip(&x, move |gi, xi| if xi > 0.0 { gi } else { alpha * gi }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let y = self.value().map(f32::tanh);
        let yc = y.clone();
        self.unary(y, move |g| g.zip(&yc, |gi, yi| gi * (1.0 - yi * yi)))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let y = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        let yc = y.clone();
        self.unary(y, move |g| g.zip(&yc, |gi, yi| gi * yi * (1.0 - yi)))
    }

    /// Numerically stable row-wise softmax of a `[B, D]` tensor.
    pub fn softmax_rows(&self) -> Var {
        let y = self.value().softmax_rows();
        let yc = y.clone();
        self.unary(y, move |g| {
            // dx_i = s_i * (g_i - Σ_j g_j s_j), per row.
            let mut out = g.clone();
            for r in 0..out.rows() {
                let s = yc.row(r);
                let dot: f32 = out.row(r).iter().zip(s).map(|(gi, si)| gi * si).sum();
                let row = out.row_mut(r);
                for (xi, &si) in row.iter_mut().zip(s) {
                    *xi = si * (*xi - dot);
                }
            }
            out
        })
    }

    // ----- row broadcast (bias-style) ops -----

    /// `[B, D] + [D]` with gradient summed over the batch for the row
    /// operand.
    pub fn add_row(&self, row: &Var) -> Var {
        let v = self.value().add_row(row.value());
        self.binary(row, v, |g| (g.clone(), g.sum_axis0()))
    }

    /// `[B, D] - [D]`.
    pub fn sub_row(&self, row: &Var) -> Var {
        let v = self.value().sub_row(row.value());
        self.binary(row, v, |g| (g.clone(), g.sum_axis0().neg()))
    }

    /// `[B, D] * [D]` (per-column scaling).
    pub fn mul_row(&self, row: &Var) -> Var {
        let v = self.value().mul_row(row.value());
        let x = self.value().clone();
        let r = row.value().clone();
        self.binary(row, v, move |g| (g.mul_row(&r), g.mul(&x).sum_axis0()))
    }

    /// `[B, D] / [D]` (per-column division).
    pub fn div_row(&self, row: &Var) -> Var {
        let v = self.value().div_row(row.value());
        let x = self.value().clone();
        let r = row.value().clone();
        self.binary(row, v, move |g| {
            let gx = g.div_row(&r);
            let gr = g.mul(&x).sum_axis0().zip(&r, |num, ri| -num / (ri * ri));
            (gx, gr)
        })
    }

    // ----- linear algebra -----

    /// Matrix product `[M, K] x [K, N] -> [M, N]`.
    pub fn matmul(&self, other: &Var) -> Var {
        let v = self.value().matmul(other.value());
        let a = self.value().clone();
        let b = other.value().clone();
        self.binary(other, v, move |g| (g.matmul_nt(&b), a.matmul_tn(g)))
    }

    // ----- shape ops -----

    /// Reshape; gradient reshapes back.
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let original = self.shape().to_vec();
        let v = self.value().reshape(shape);
        self.unary(v, move |g| g.reshape(&original))
    }

    /// Concatenates 2-D vars along columns.
    pub fn concat_cols(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero vars");
        let tensors: Vec<&Tensor> = parts.iter().map(|p| p.value()).collect();
        let value = Tensor::concat_cols(&tensors);
        let widths: Vec<usize> = parts.iter().map(|p| p.value().cols()).collect();
        Var::make(
            value,
            parts.to_vec(),
            Some(Box::new(move |g| {
                let mut grads = Vec::with_capacity(widths.len());
                let mut lo = 0;
                for &w in &widths {
                    grads.push(g.slice_cols(lo, lo + w));
                    lo += w;
                }
                grads
            })),
            None,
        )
    }

    /// Extracts columns `[lo, hi)` of a 2-D var.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Var {
        let v = self.value().slice_cols(lo, hi);
        let cols = self.value().cols();
        self.unary(v, move |g| {
            let mut full = Tensor::zeros(&[g.rows(), cols]);
            for r in 0..g.rows() {
                full.row_mut(r)[lo..hi].copy_from_slice(g.row(r));
            }
            full
        })
    }

    // ----- reductions -----

    /// Sum of all elements, as a `[1]` var.
    pub fn sum(&self) -> Var {
        let shape = self.shape().to_vec();
        let v = Tensor::from_vec(vec![self.value().sum()], &[1]);
        self.unary(v, move |g| Tensor::full(&shape, g.data()[0]))
    }

    /// Mean of all elements, as a `[1]` var.
    pub fn mean(&self) -> Var {
        let n = self.value().numel() as f32;
        self.sum().mul_scalar(1.0 / n)
    }

    /// Column means of a `[B, D]` var, producing `[D]`.
    pub fn mean_axis0(&self) -> Var {
        let rows = self.value().rows();
        let cols = self.value().cols();
        let v = self.value().mean_axis0();
        self.unary(v, move |g| {
            // Every row receives g / B.
            let scaled = g.mul_scalar(1.0 / rows as f32);
            let mut out = Tensor::zeros(&[rows, cols]);
            for r in 0..rows {
                out.row_mut(r).copy_from_slice(scaled.data());
            }
            out
        })
    }

    // ----- losses -----

    /// Numerically stable binary cross-entropy on logits against a
    /// constant target tensor; returns the mean loss as a `[1]` var.
    ///
    /// `loss = mean(max(x, 0) - x*y + ln(1 + e^{-|x|}))`,
    /// `dloss/dx = (σ(x) - y) / N`.
    pub fn bce_with_logits(&self, targets: &Tensor) -> Var {
        assert_eq!(self.shape(), targets.shape(), "bce target shape mismatch");
        let x = self.value().clone();
        let y = targets.clone();
        let n = x.numel() as f32;
        let loss = x
            .zip(&y, |xi, yi| {
                xi.max(0.0) - xi * yi + (1.0 + (-xi.abs()).exp()).ln()
            })
            .sum()
            / n;
        self.unary(Tensor::from_vec(vec![loss], &[1]), move |g| {
            let scale = g.data()[0] / n;
            x.zip(&y, |xi, yi| {
                let sig = 1.0 / (1.0 + (-xi).exp());
                scale * (sig - yi)
            })
        })
    }

    /// Mean squared error against a constant target; returns `[1]`.
    pub fn mse(&self, targets: &Tensor) -> Var {
        assert_eq!(self.shape(), targets.shape(), "mse target shape mismatch");
        let x = self.value().clone();
        let y = targets.clone();
        let n = x.numel() as f32;
        let loss = x.zip(&y, |a, b| (a - b) * (a - b)).sum() / n;
        self.unary(Tensor::from_vec(vec![loss], &[1]), move |g| {
            let scale = 2.0 * g.data()[0] / n;
            x.zip(&y, |a, b| scale * (a - b))
        })
    }

    // ----- convolution -----

    /// 2-D convolution: `x [B, C, H, W]`, `w [OC, C, KH, KW]`.
    pub fn conv2d(&self, weight: &Var, stride: usize, pad: usize) -> Var {
        let v = conv2d(self.value(), weight.value(), stride, pad);
        let x = self.value().clone();
        let w = weight.value().clone();
        let (h, wd) = (x.shape()[2], x.shape()[3]);
        let (kh, kw) = (w.shape()[2], w.shape()[3]);
        debug_assert_eq!(v.shape()[2], conv_out_dim(h, kh, stride, pad));
        self.binary(weight, v, move |g| {
            (
                conv2d_grad_input(g, &w, (h, wd), stride, pad),
                conv2d_grad_weight(&x, g, (kh, kw), stride, pad),
            )
        })
    }

    /// Transposed 2-D convolution (fractionally strided / `DeConv`):
    /// `x [B, IC, H, W]`, `w [IC, OC, KH, KW]`.
    pub fn conv_transpose2d(&self, weight: &Var, stride: usize, pad: usize) -> Var {
        let x = self.value();
        let w = weight.value();
        let (h, wd) = (x.shape()[2], x.shape()[3]);
        let (kh, kw) = (w.shape()[2], w.shape()[3]);
        let oh = conv_transpose_out_dim(h, kh, stride, pad);
        let ow = conv_transpose_out_dim(wd, kw, stride, pad);
        // Forward of convT is the input-gradient primitive of conv.
        let v = conv2d_grad_input(x, w, (oh, ow), stride, pad);
        let xc = x.clone();
        let wc = w.clone();
        self.binary(weight, v, move |g| {
            // g has the "input" role of the underlying conv; x has the
            // "output-grad" role.
            (
                conv2d(g, &wc, stride, pad),
                conv2d_grad_weight(g, &xc, (kh, kw), stride, pad),
            )
        })
    }

    /// Adds a per-channel bias `[C]` to a `[B, C, H, W]` var.
    pub fn add_channel_bias(&self, bias: &Var) -> Var {
        let s = self.shape().to_vec();
        assert_eq!(s.len(), 4, "add_channel_bias requires a 4-D var");
        let c = s[1];
        assert_eq!(bias.value().numel(), c, "bias length mismatch");
        let hw = s[2] * s[3];
        let mut v = self.value().clone();
        {
            let b = bias.value().data().to_vec();
            let vd = v.data_mut();
            for (i, x) in vd.iter_mut().enumerate() {
                *x += b[(i / hw) % c];
            }
        }
        self.binary(bias, v, move |g| {
            let mut gb = vec![0.0f32; c];
            for (i, &gi) in g.data().iter().enumerate() {
                gb[(i / hw) % c] += gi;
            }
            (g.clone(), Tensor::from_vec(gb, &[c]))
        })
    }

    /// `[B, C, H, W] -> [B*H*W, C]` channel permutation (see
    /// [`Tensor::bchw_to_nc`]); the gradient applies the inverse
    /// permutation.
    pub fn bchw_to_nc(&self) -> Var {
        let s = self.shape().to_vec();
        assert_eq!(s.len(), 4, "bchw_to_nc requires a 4-D var");
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        self.unary(self.value().bchw_to_nc(), move |g| g.nc_to_bchw(b, c, h, w))
    }

    /// `[B*H*W, C] -> [B, C, H, W]` (inverse of [`Var::bchw_to_nc`]).
    pub fn nc_to_bchw(&self, b: usize, c: usize, h: usize, w: usize) -> Var {
        self.unary(self.value().nc_to_bchw(b, c, h, w), |g| g.bchw_to_nc())
    }

    // ----- backward -----

    /// Runs backpropagation from this (scalar) var, accumulating into
    /// every reachable [`Param`].
    pub fn backward(&self) {
        assert_eq!(
            self.value().numel(),
            1,
            "backward() requires a scalar; use backward_with for tensors"
        );
        self.backward_with(Tensor::ones(self.shape()));
    }

    /// Runs backpropagation with an explicit output gradient.
    pub fn backward_with(&self, grad: Tensor) {
        assert_eq!(grad.shape(), self.shape(), "seed gradient shape mismatch");
        // Collect reachable nodes. `seen` and `grads` are ordered
        // (BTree) collections keyed by node id: gradient accumulation
        // must be a pure function of the graph, never of a hash seed,
        // so that backward passes are bit-identical across processes —
        // the same contract the forward kernels keep across thread
        // counts (see `tests/thread_determinism.rs`).
        let mut stack = vec![self.clone()];
        let mut order: Vec<Var> = Vec::new();
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        while let Some(v) = stack.pop() {
            if !seen.insert(v.node.id) {
                continue;
            }
            for p in &v.node.parents {
                stack.push(p.clone());
            }
            order.push(v);
        }
        // Reverse topological order = descending construction id.
        order.sort_by_key(|v| std::cmp::Reverse(v.node.id));

        let mut grads: BTreeMap<u64, Tensor> = BTreeMap::new();
        grads.insert(self.node.id, grad);
        for v in order {
            let Some(g) = grads.remove(&v.node.id) else {
                continue;
            };
            if let Some(param) = &v.node.param {
                param.accumulate(&g);
            }
            if let Some(backward) = &v.node.backward {
                let parent_grads = backward(&g);
                assert_eq!(
                    parent_grads.len(),
                    v.node.parents.len(),
                    "backward closure returned wrong arity"
                );
                for (p, pg) in v.node.parents.iter().zip(parent_grads) {
                    grads
                        .entry(p.node.id)
                        .and_modify(|acc| acc.add_assign(&pg))
                        .or_insert(pg);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Computes the finite-difference gradient of `f` at `x` and compares
    /// it against the analytic gradient deposited in the param.
    fn grad_check(x: Tensor, f: impl Fn(&Var) -> Var, tol: f32) {
        let param = Param::new(x.clone());
        let out = f(&param.var());
        out.backward();
        let analytic = param.grad();
        let eps = 1e-2f32;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = f(&Var::constant(xp)).value().data()[0];
            let fm = f(&Var::constant(xm)).value().data()[0];
            let fd = (fp - fm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (fd - a).abs() < tol.max(tol * fd.abs()),
                "grad[{i}]: finite-diff {fd} vs analytic {a}"
            );
        }
    }

    fn randn(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor::randn(shape, &mut rng)
    }

    #[test]
    fn grad_elementwise_chain() {
        grad_check(
            randn(&[3, 4], 1),
            |x| x.mul_scalar(2.0).add_scalar(0.5).sqr().mean(),
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        grad_check(randn(&[2, 5], 2), |x| x.tanh().sum(), 1e-2);
        grad_check(randn(&[2, 5], 3), |x| x.sigmoid().sum(), 1e-2);
        grad_check(randn(&[2, 5], 4), |x| x.leaky_relu(0.2).sum(), 2e-2);
        grad_check(randn(&[2, 5], 5), |x| x.exp().mean(), 1e-2);
        grad_check(
            randn(&[2, 5], 6).map(|v| v.abs() + 0.5),
            |x| x.ln_eps(1e-8).sum(),
            2e-2,
        );
        grad_check(
            randn(&[2, 5], 16).map(|v| v.abs() + 0.5),
            |x| x.sqrt().sum(),
            2e-2,
        );
    }

    #[test]
    fn grad_softmax() {
        grad_check(
            randn(&[3, 4], 7),
            |x| {
                // Weighted sum so the gradient is not identically zero.
                let w = Var::constant(Tensor::from_vec(
                    (0..12).map(|i| (i % 4) as f32 - 1.5).collect(),
                    &[3, 4],
                ));
                x.softmax_rows().mul(&w).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_both_sides() {
        let b = randn(&[4, 2], 8);
        grad_check(
            randn(&[3, 4], 9),
            move |x| x.matmul(&Var::constant(b.clone())).sqr().sum(),
            5e-2,
        );
        let a = randn(&[3, 4], 10);
        grad_check(
            randn(&[4, 2], 11),
            move |x| Var::constant(a.clone()).matmul(x).sqr().sum(),
            5e-2,
        );
    }

    #[test]
    fn grad_row_broadcasts() {
        let x = randn(&[5, 3], 12);
        grad_check(
            randn(&[3], 13),
            move |r| Var::constant(x.clone()).add_row(r).sqr().sum(),
            5e-2,
        );
        let x2 = randn(&[5, 3], 14);
        grad_check(
            randn(&[3], 15),
            move |r| Var::constant(x2.clone()).mul_row(r).sqr().sum(),
            5e-2,
        );
        let x3 = randn(&[5, 3], 16);
        grad_check(
            randn(&[3], 17).map(|v| v.abs() + 1.0),
            move |r| Var::constant(x3.clone()).div_row(r).sqr().sum(),
            6e-2,
        );
        let x4 = randn(&[5, 3], 30);
        grad_check(
            randn(&[3], 31),
            move |r| Var::constant(x4.clone()).sub_row(r).sqr().sum(),
            5e-2,
        );
    }

    #[test]
    fn grad_concat_slice() {
        grad_check(
            randn(&[2, 6], 18),
            |x| {
                let left = x.slice_cols(0, 2);
                let right = x.slice_cols(2, 6);
                Var::concat_cols(&[right, left]).sqr().sum()
            },
            5e-2,
        );
    }

    #[test]
    fn grad_losses() {
        let targets = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0], &[3, 2]);
        let t2 = targets.clone();
        grad_check(randn(&[3, 2], 19), move |x| x.bce_with_logits(&t2), 1e-2);
        let t3 = randn(&[3, 2], 20);
        grad_check(randn(&[3, 2], 21), move |x| x.mse(&t3), 1e-2);
    }

    #[test]
    fn grad_mean_axis0() {
        grad_check(randn(&[4, 3], 22), |x| x.mean_axis0().sqr().sum(), 1e-2);
    }

    #[test]
    fn grad_conv_and_transpose() {
        let w = randn(&[2, 1, 3, 3], 23).mul_scalar(0.5);
        grad_check(
            randn(&[1, 1, 5, 5], 24),
            move |x| {
                x.reshape(&[1, 1, 5, 5])
                    .conv2d(&Var::constant(w.clone()), 2, 1)
                    .sqr()
                    .sum()
            },
            8e-2,
        );
        let x = randn(&[1, 2, 5, 5], 25);
        grad_check(
            randn(&[3, 2, 3, 3], 26).mul_scalar(0.5),
            move |w| Var::constant(x.clone()).conv2d(w, 2, 1).sqr().sum(),
            8e-2,
        );
        // Transposed conv wrt both operands.
        let wt = randn(&[2, 1, 4, 4], 27).mul_scalar(0.5);
        grad_check(
            randn(&[1, 2, 2, 2], 28),
            move |x| {
                x.conv_transpose2d(&Var::constant(wt.clone()), 2, 1)
                    .sqr()
                    .sum()
            },
            8e-2,
        );
        let xt = randn(&[1, 2, 2, 2], 29);
        grad_check(
            randn(&[2, 1, 4, 4], 32).mul_scalar(0.5),
            move |w| {
                Var::constant(xt.clone())
                    .conv_transpose2d(w, 2, 1)
                    .sqr()
                    .sum()
            },
            8e-2,
        );
    }

    #[test]
    fn grad_channel_bias() {
        let x = randn(&[2, 3, 2, 2], 33);
        grad_check(
            randn(&[3], 34),
            move |b| Var::constant(x.clone()).add_channel_bias(b).sqr().sum(),
            5e-2,
        );
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // y = x*x + x  => dy/dx = 2x + 1 at scalar level with x reused.
        let p = Param::new(Tensor::from_slice(&[3.0]));
        let x = p.var();
        let y = x.mul(&x).add(&x).sum();
        y.backward();
        assert_eq!(p.grad().data()[0], 7.0);
    }

    #[test]
    fn repeated_backward_accumulates_into_param() {
        let p = Param::new(Tensor::from_slice(&[2.0]));
        for _ in 0..3 {
            p.var().sqr().sum().backward();
        }
        assert_eq!(p.grad().data()[0], 12.0); // 3 * 2x
        p.zero_grad();
        assert_eq!(p.grad().data()[0], 0.0);
    }

    #[test]
    fn detach_blocks_gradient() {
        let p = Param::new(Tensor::from_slice(&[5.0]));
        let x = p.var();
        let y = x.detach().mul(&x).sum(); // only the non-detached side flows
        y.backward();
        assert_eq!(p.grad().data()[0], 5.0);
    }

    #[test]
    fn param_update_changes_value() {
        let p = Param::new(Tensor::from_slice(&[1.0, 2.0]));
        p.var().sqr().sum().backward();
        p.update(|v, g| v.axpy(-0.1, g));
        let v = p.value();
        assert!((v.data()[0] - 0.8).abs() < 1e-6);
        assert!((v.data()[1] - 1.6).abs() < 1e-6);
    }
}
