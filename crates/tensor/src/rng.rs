//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (weight initialization,
//! minibatch sampling, noise priors, dataset simulation, differential
//! privacy noise) draws from [`Rng`], a xoshiro256++ generator seeded via
//! SplitMix64. A single `u64` seed therefore reproduces an entire
//! experiment bit-for-bit, which the test suites and the benchmark
//! harness rely on.

/// SplitMix64 step, used to expand a single `u64` seed into the four
/// 64-bit words of xoshiro256++ state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure; it is a simulation RNG with a 2^256-1
/// period and excellent statistical quality, sufficient for the Monte
/// Carlo workloads in this repository.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    gauss_spare: Option<f64>,
}

/// A full snapshot of an [`Rng`]'s stream position: the four xoshiro
/// state words plus the cached Box–Muller spare. Restoring it resumes
/// the stream at exactly the captured draw, which is what lets a
/// training checkpoint replay bit-identically to an uninterrupted run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngState {
    /// The xoshiro256++ state words.
    pub words: [u64; 4],
    /// Cached second output of the last Box–Muller transform, if any.
    pub gauss_spare: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical
    /// streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator. Useful for handing each
    /// thread or submodel its own stream while keeping the parent
    /// deterministic.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Captures the exact stream position (for checkpointing).
    pub fn state(&self) -> RngState {
        RngState {
            words: self.s,
            gauss_spare: self.gauss_spare,
        }
    }

    /// Rebuilds a generator at a position captured by [`Rng::state`].
    /// The restored generator produces the identical remaining stream.
    pub fn from_state(state: RngState) -> Self {
        Rng {
            s: state.words,
            gauss_spare: state.gauss_spare,
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        self.f64() as f32
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift with a
    /// rejection step to stay unbiased.
    #[inline]
    pub fn usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::usize requires n > 0");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= lo.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range requires lo < hi");
        lo + self.usize(hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate via the Box–Muller transform (cached
    /// pairs, so consecutive calls alternate between fresh and spare
    /// values).
    pub fn normal(&mut self) -> f64 {
        if let Some(spare) = self.gauss_spare.take() {
            return spare;
        }
        // Rejection-free polar form would branch unpredictably; the
        // trigonometric form is fine at this scale.
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal_ms(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Laplace deviate with location 0 and the given scale `b`
    /// (density `exp(-|x|/b) / 2b`). Used by the differentially private
    /// synthesizers.
    pub fn laplace(&mut self, scale: f64) -> f64 {
        let u = self.f64() - 0.5;
        -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Samples an index from an (unnormalized, non-negative) weight
    /// vector. Panics if all weights are zero or any is negative.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|w| *w >= 0.0),
            "Rng::weighted requires non-negative weights with positive sum"
        );
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir-free; uses a
    /// partial Fisher–Yates over an index vector).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn usize_unbiased_small_range() {
        let mut rng = Rng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.usize(5)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "frac = {frac}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn laplace_moments() {
        let mut rng = Rng::seed_from_u64(13);
        let scale = 2.0;
        let n = 200_000;
        let (mut sum, mut sum_abs) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.laplace(scale);
            sum += x;
            sum_abs += x.abs();
        }
        // E[X] = 0, E[|X|] = b.
        assert!((sum / n as f64).abs() < 0.05);
        assert!((sum_abs / n as f64 - scale).abs() < 0.05);
    }

    #[test]
    fn weighted_follows_weights() {
        let mut rng = Rng::seed_from_u64(17);
        let weights = [1.0, 3.0];
        let n = 100_000;
        let ones = (0..n).filter(|_| rng.weighted(&weights) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(19);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from_u64(23);
        let idx = rng.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut rng = Rng::seed_from_u64(55);
        // Advance with a mix of draws, leaving a Box–Muller spare cached.
        for _ in 0..17 {
            rng.next_u64();
        }
        rng.normal();
        let state = rng.state();
        let ahead: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let ahead_normals: Vec<f64> = (0..8).map(|_| rng.normal()).collect();
        let mut resumed = Rng::from_state(state);
        let replay: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        let replay_normals: Vec<f64> = (0..8).map(|_| resumed.normal()).collect();
        assert_eq!(ahead, replay);
        assert_eq!(ahead_normals, replay_normals);
    }

    #[test]
    fn state_captures_gauss_spare() {
        let mut rng = Rng::seed_from_u64(56);
        rng.normal(); // leaves a spare cached
        let state = rng.state();
        assert!(state.gauss_spare.is_some());
        let mut resumed = Rng::from_state(state);
        assert_eq!(rng.normal(), resumed.normal());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(31);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
