//! Persistent worker pool for data-parallel tensor kernels.
//!
//! The pool is a process-global set of `std::thread` workers that execute
//! *blocks* of a data-parallel loop. It exists so the hot kernels in
//! [`crate::linalg`], [`crate::conv`] and [`crate::ops`] can use every
//! core without taking a dependency on rayon and without paying a thread
//! spawn per operation: workers are spawned once and park on a condition
//! variable between jobs.
//!
//! ## Sizing
//!
//! The default worker count is `DAISY_THREADS` (if set to a positive
//! integer) or [`std::thread::available_parallelism`]. It can be changed
//! at runtime with [`set_threads`]; the determinism contract below makes
//! this safe even while other threads are running kernels.
//!
//! ## Determinism contract
//!
//! Every kernel built on this pool produces **bit-identical results for
//! any thread count**, including 1. This is stronger than the usual
//! "deterministic for a fixed thread count" guarantee and is what keeps
//! the resilience layer's recovery traces reproducible:
//!
//! - *Disjoint-write* kernels (matmul row blocks, elementwise maps,
//!   per-sample convolution) compute each output element entirely within
//!   one block, in the same per-element floating-point accumulation
//!   order as the serial loop. Block boundaries only decide *who*
//!   computes an element, never the order of the additions inside it.
//! - *Reductions* ([`Tensor::sum`](crate::Tensor::sum) and friends) are
//!   defined over **fixed-size blocks that do not depend on the thread
//!   count**: each block produces a partial, and partials are combined
//!   in block-index order. The serial path runs the exact same blocked
//!   computation, so serial and parallel results are bit-for-bit equal.
//!
//! Because results never depend on the thread count, [`set_threads`] is
//! purely a performance knob and tests may call it freely.
//!
//! ## Scheduling
//!
//! [`parallel_for`] publishes a job (a lifetime-erased pointer to the
//! caller's closure plus an atomic block cursor) to the shared queue as
//! one ticket per helper worker. Workers and the calling thread claim
//! block indices with `fetch_add` until the cursor is exhausted; the
//! caller then reclaims any tickets still sitting unpopped in the queue
//! and blocks on the job's condition variable until every outstanding
//! helper has finished. The closure reference never escapes the call:
//! `parallel_for` does not return until all workers are done touching
//! the job, which is what makes the lifetime erasure sound.

// The crate root denies `unsafe_code`; this module is the sanctioned
// exception — the lifetime-erased job pointer above is exactly the
// unsafety being opted back in, audited against the contract in the
// module docs.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Minimum number of scalar operations (e.g. multiply-adds) below which
/// kernels should stay on the serial path. Dispatching a job costs a few
/// microseconds of queue and wake-up traffic; small design-space cells
/// (tiny matmuls, short rows) are faster off the pool entirely.
pub const PAR_MIN_WORK: usize = 32 * 1024;

/// A data-parallel job: a lifetime-erased task plus claim/completion state.
struct Job {
    /// Pointer to the caller's closure. Valid for the whole job lifetime
    /// because `parallel_for` blocks until `tickets == 0`.
    task: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed block index.
    next: AtomicUsize,
    /// Total number of blocks.
    n_blocks: usize,
    state: Mutex<JobState>,
    done: Condvar,
}

struct JobState {
    /// Blocks fully executed (by workers and the submitting thread).
    completed: usize,
    /// Tickets handed to helpers that have not yet been returned.
    tickets: usize,
    /// Set if any block's task panicked on a worker thread.
    panicked: bool,
}

/// A queue entry: one worker's invitation to help with a job.
struct Ticket(*const Job);
// SAFETY: the `Job` a ticket points at outlives the ticket — the
// submitting thread does not return (and thus does not invalidate the
// job) until every ticket has been popped-and-returned or reclaimed.
unsafe impl Send for Ticket {}

struct Pool {
    queue: Mutex<VecDeque<Ticket>>,
    wake: Condvar,
    /// Configured thread count (including the submitting thread).
    target: AtomicUsize,
    /// Worker threads actually spawned so far.
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn default_threads() -> usize {
    // Runs once (inside the pool's `OnceLock` init), so a bad value
    // warns exactly once instead of being silently ignored.
    if let Some(v) = daisy_telemetry::knobs::raw("DAISY_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!(
                "warning: ignoring DAISY_THREADS={v:?}: expected a positive integer; \
                 using available parallelism"
            ),
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Interned handles for the pool's telemetry counters. These live in
/// the aggregate metrics plane — their values legitimately depend on
/// thread count and scheduling, so they never enter the deterministic
/// event stream (see `daisy_telemetry::metrics`).
struct PoolMetrics {
    /// Data-parallel jobs submitted (serial-path jobs included).
    jobs: &'static daisy_telemetry::metrics::Counter,
    /// Jobs that ran inline on the caller (no helpers engaged).
    serial_jobs: &'static daisy_telemetry::metrics::Counter,
    /// Total blocks across all jobs.
    blocks: &'static daisy_telemetry::metrics::Counter,
    /// Blocks executed by helper workers rather than the submitter —
    /// the "steal" counter; `helper_blocks / blocks` is pool
    /// utilization by offloaded work.
    helper_blocks: &'static daisy_telemetry::metrics::Counter,
    /// Tickets reclaimed unpopped because every helper was busy or the
    /// job drained first — the idle/overcommit counter.
    reclaimed_tickets: &'static daisy_telemetry::metrics::Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        jobs: daisy_telemetry::metrics::counter("pool.jobs"),
        serial_jobs: daisy_telemetry::metrics::counter("pool.serial_jobs"),
        blocks: daisy_telemetry::metrics::counter("pool.blocks"),
        helper_blocks: daisy_telemetry::metrics::counter("pool.helper_blocks"),
        reclaimed_tickets: daisy_telemetry::metrics::counter("pool.reclaimed_tickets"),
    })
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        target: AtomicUsize::new(default_threads()),
        spawned: Mutex::new(0),
    })
}

/// The configured thread count, including the submitting thread.
///
/// Defaults to `DAISY_THREADS` or the machine's available parallelism.
/// A value of 1 means every kernel runs serially on the calling thread.
pub fn num_threads() -> usize {
    pool().target.load(Ordering::Relaxed)
}

/// Set the thread count used by all subsequent kernels (clamped to ≥ 1).
///
/// Missing workers are spawned on demand; surplus workers simply stay
/// parked. Thanks to the determinism contract this never changes any
/// kernel's result, only its speed, so tests may flip it at will even
/// while other threads are mid-kernel.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    let p = pool();
    p.target.store(n, Ordering::Relaxed);
    ensure_workers(p, n.saturating_sub(1));
}

fn ensure_workers(p: &'static Pool, want: usize) {
    let mut spawned = p.spawned.lock().unwrap();
    while *spawned < want {
        std::thread::Builder::new()
            .name(format!("daisy-worker-{}", *spawned))
            .spawn(move || worker_loop(p))
            .expect("failed to spawn daisy worker thread");
        *spawned += 1;
    }
}

fn worker_loop(p: &'static Pool) {
    loop {
        let ticket = {
            let mut q = p.queue.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = p.wake.wait(q).unwrap();
            }
        };
        // SAFETY: the job outlives the ticket (see `Ticket`).
        unsafe { run_ticket(ticket.0) };
    }
}

/// Claim and run blocks until the job's cursor is exhausted, then return
/// the ticket by updating the job's completion state.
///
/// # Safety
/// `job` must point to a live `Job` whose submitter is blocked in
/// `parallel_for` until `tickets == 0`.
unsafe fn run_ticket(job: *const Job) {
    let job = &*job;
    let (done, panicked) = run_blocks(job);
    let mut st = job.state.lock().unwrap();
    st.completed += done;
    st.tickets -= 1;
    st.panicked |= panicked;
    if st.completed == job.n_blocks && st.tickets == 0 {
        job.done.notify_all();
    }
}

/// Shared claim loop for workers and the submitting thread.
fn run_blocks(job: &Job) -> (usize, bool) {
    // SAFETY: the task pointer is valid for the job's lifetime.
    let task = unsafe { &*job.task };
    let mut done = 0usize;
    let mut panicked = false;
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_blocks {
            break;
        }
        if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
            panicked = true;
        }
        done += 1;
    }
    (done, panicked)
}

/// Run `task(block)` for every `block` in `0..n_blocks`, spreading blocks
/// across the pool. Blocks may run in any order and on any thread; each
/// block index runs exactly once. Returns only after every block has
/// finished, so `task` may borrow from the caller's stack.
///
/// With `num_threads() <= 1` (or a single block) this is a plain serial
/// loop with no synchronization at all.
///
/// # Panics
/// If `task` panics on any thread, the panic is surfaced on the calling
/// thread after all blocks have completed.
pub fn parallel_for<F: Fn(usize) + Sync>(n_blocks: usize, task: F) {
    parallel_for_dyn(n_blocks, &task)
}

fn parallel_for_dyn(n_blocks: usize, task: &(dyn Fn(usize) + Sync)) {
    if n_blocks == 0 {
        return;
    }
    let threads = num_threads();
    let helpers = threads.saturating_sub(1).min(n_blocks - 1);
    if helpers == 0 {
        if daisy_telemetry::enabled() {
            let m = pool_metrics();
            m.jobs.add(1);
            m.serial_jobs.add(1);
            m.blocks.add(n_blocks as u64);
        }
        for i in 0..n_blocks {
            task(i);
        }
        return;
    }
    let p = pool();
    ensure_workers(p, helpers);

    // SAFETY: we erase the task's lifetime to store it in the job. The
    // pointer is only dereferenced by workers holding a ticket, and this
    // function does not return until every ticket is accounted for.
    let task_ptr: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
    };
    let job = Job {
        task: task_ptr,
        next: AtomicUsize::new(0),
        n_blocks,
        state: Mutex::new(JobState {
            completed: 0,
            tickets: helpers,
            panicked: false,
        }),
        done: Condvar::new(),
    };
    let job_ptr = &job as *const Job;

    {
        let mut q = p.queue.lock().unwrap();
        for _ in 0..helpers {
            q.push_back(Ticket(job_ptr));
        }
        p.wake.notify_all();
    }

    // The submitting thread works too.
    let (done_here, panicked_here) = run_blocks(&job);

    // Reclaim tickets nobody popped (all workers were busy elsewhere or
    // the job drained before they woke), so we don't wait on them.
    let reclaimed = {
        let mut q = p.queue.lock().unwrap();
        let before = q.len();
        q.retain(|t| !std::ptr::eq(t.0, job_ptr));
        before - q.len()
    };

    let mut st = job.state.lock().unwrap();
    st.completed += done_here;
    st.tickets -= reclaimed;
    st.panicked |= panicked_here;
    while !(st.completed == job.n_blocks && st.tickets == 0) {
        st = job.done.wait(st).unwrap();
    }
    let panicked = st.panicked;
    drop(st);
    if daisy_telemetry::enabled() {
        let m = pool_metrics();
        m.jobs.add(1);
        m.blocks.add(n_blocks as u64);
        m.helper_blocks.add((n_blocks - done_here) as u64);
        m.reclaimed_tickets.add(reclaimed as u64);
    }
    if panicked {
        panic!("a daisy-tensor parallel kernel task panicked on a worker thread");
    }
}

/// Suggested rows-per-block for a disjoint-write kernel that produces
/// `rows` output rows at a total cost of `work` scalar operations:
/// one block (pure serial path) below [`PAR_MIN_WORK`], otherwise about
/// four blocks per thread so the dynamic claim loop can level uneven
/// progress. Affects only scheduling, never results — each output row
/// is computed entirely within one block.
pub fn rows_per_block(rows: usize, work: usize) -> usize {
    if work < PAR_MIN_WORK {
        return rows.max(1);
    }
    let blocks = (num_threads() * 4).max(1);
    rows.div_ceil(blocks).max(1)
}

/// Split `0..total` into contiguous runs of at most `block_size` items
/// and run `f(start, end)` for each run in parallel. Run boundaries are
/// a pure function of `total` and `block_size` — never of the thread
/// count — which is what reduction kernels rely on for determinism.
pub fn for_each_block<F: Fn(usize, usize) + Sync>(total: usize, block_size: usize, f: F) {
    if total == 0 {
        return;
    }
    let block_size = block_size.max(1);
    let n_blocks = total.div_ceil(block_size);
    parallel_for(n_blocks, |b| {
        let start = b * block_size;
        let end = (start + block_size).min(total);
        f(start, end);
    });
}

/// Partition a mutable buffer of `total_rows` rows of `row_width`
/// elements into chunks of at most `rows_per_block` rows and run
/// `f(first_row, chunk)` on each chunk in parallel.
///
/// Each chunk is a disjoint `&mut [f32]` window of `out`, so the closure
/// can write freely without synchronization.
pub fn for_each_row_chunk<F>(out: &mut [f32], row_width: usize, rows_per_block: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        return;
    }
    let row_width = row_width.max(1);
    debug_assert_eq!(out.len() % row_width, 0);
    let total_rows = out.len() / row_width;
    let base = out.as_mut_ptr() as usize;
    for_each_block(total_rows, rows_per_block, |r0, r1| {
        // SAFETY: blocks are disjoint row ranges of `out`, each block
        // index runs exactly once, and `out` outlives the call.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(
                (base as *mut f32).add(r0 * row_width),
                (r1 - r0) * row_width,
            )
        };
        f(r0, chunk);
    });
}

/// Compute one value per block in parallel and return them in block
/// order. Used by reductions: combining the returned partials in index
/// order gives a result independent of which thread produced which slot.
pub fn collect_blocks<T, F>(n_blocks: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n_blocks];
    let base = out.as_mut_ptr() as usize;
    parallel_for(n_blocks, |i| {
        // SAFETY: each block index runs exactly once, slots are disjoint,
        // and `out` outlives the call.
        unsafe { *(base as *mut T).add(i) = f(i) };
    });
    out
}

/// Serializes unit tests that mutate the global thread count. Results
/// never depend on the thread count, but tests asserting *behavior* at a
/// specific count (e.g. serial in-order execution) must not race.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parallel_for_runs_every_block_once() {
        let _g = test_guard();
        set_threads(4);
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        parallel_for(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_row_chunk_covers_disjointly() {
        let _g = test_guard();
        set_threads(3);
        let mut buf = vec![0.0f32; 7 * 5]; // 7 rows, awkward block split
        for_each_row_chunk(&mut buf, 5, 2, |first_row, chunk| {
            for (r, row) in chunk.chunks_mut(5).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + r) as f32;
                }
            }
        });
        for (i, row) in buf.chunks(5).enumerate() {
            assert!(row.iter().all(|&v| v == i as f32), "row {i} wrong: {row:?}");
        }
    }

    #[test]
    fn collect_blocks_is_in_block_order() {
        let _g = test_guard();
        set_threads(4);
        let parts = collect_blocks(57, |i| i * 10);
        assert_eq!(parts, (0..57).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_when_one_thread() {
        // With a single thread the loop must run inline (and in order,
        // though callers are not allowed to rely on order).
        let _g = test_guard();
        set_threads(1);
        let mut seen = Vec::new();
        let cell = std::sync::Mutex::new(&mut seen);
        parallel_for(8, |i| cell.lock().unwrap().push(i));
        set_threads(4);
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let _g = test_guard();
        set_threads(4);
        let r = catch_unwind(|| {
            parallel_for(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
    }
}
