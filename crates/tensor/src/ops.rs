//! Elementwise arithmetic, row-broadcast operations and reductions.
//!
//! Broadcasting is intentionally restricted to the two patterns the
//! neural-network layers need: scalar ⊕ tensor and `[B, D] ⊕ [D]`
//! (row broadcast). Anything fancier would be dead weight.
//!
//! Batched elementwise ops and the reductions run on the worker pool
//! ([`crate::pool`]) above a size threshold. Reductions are *canonically
//! blocked*: partials are computed over fixed-size element/row blocks
//! (independent of the thread count) and combined in block order, on the
//! serial path too, so every result is bit-identical for any thread
//! count.

use crate::pool;
use crate::tensor::Tensor;

/// Elements per partial in the canonically blocked full-tensor
/// reductions ([`Tensor::sum`], [`Tensor::norm_sq`]). Fixed — never a
/// function of the thread count — so the partial boundaries, and hence
/// the floating-point result, are the same on every machine.
const REDUCE_BLOCK: usize = 16 * 1024;

/// Rows per partial in the canonically blocked column reduction
/// ([`Tensor::sum_axis0`]). Fixed for the same reason as
/// `REDUCE_BLOCK`.
const AXIS0_ROW_BLOCK: usize = 64;

impl Tensor {
    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Elementwise square.
    pub fn sqr(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Adds a `[D]` vector to every row of a `[B, D]` tensor.
    pub fn add_row(&self, row: &Tensor) -> Tensor {
        self.row_broadcast(row, |a, b| a + b)
    }

    /// Subtracts a `[D]` vector from every row of a `[B, D]` tensor.
    pub fn sub_row(&self, row: &Tensor) -> Tensor {
        self.row_broadcast(row, |a, b| a - b)
    }

    /// Multiplies every row of a `[B, D]` tensor by a `[D]` vector.
    pub fn mul_row(&self, row: &Tensor) -> Tensor {
        self.row_broadcast(row, |a, b| a * b)
    }

    /// Divides every row of a `[B, D]` tensor by a `[D]` vector.
    pub fn div_row(&self, row: &Tensor) -> Tensor {
        self.row_broadcast(row, |a, b| a / b)
    }

    fn row_broadcast(&self, row: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.ndim(), 2, "row broadcast requires a 2-D tensor");
        assert_eq!(
            row.numel(),
            self.cols(),
            "row length {} does not match columns {}",
            row.numel(),
            self.cols()
        );
        let (rows, cols) = (self.rows(), self.cols());
        let rv = row.data();
        let a = self.data();
        let mut data = vec![0.0f32; a.len()];
        let rpb = pool::rows_per_block(rows, a.len());
        pool::for_each_row_chunk(&mut data, cols, rpb, |r0, chunk| {
            for (i, orow) in chunk.chunks_mut(cols).enumerate() {
                let arow = &a[(r0 + i) * cols..(r0 + i + 1) * cols];
                for ((o, &av), &bv) in orow.iter_mut().zip(arow).zip(rv) {
                    *o = f(av, bv);
                }
            }
        });
        Tensor::from_vec(data, self.shape())
    }

    /// Sum of all elements.
    ///
    /// Canonically blocked: partial sums over fixed `REDUCE_BLOCK`
    /// element runs, combined in block order — the same computation on
    /// the serial and parallel paths, so the result is bit-identical for
    /// any thread count.
    pub fn sum(&self) -> f32 {
        let d = self.data();
        if d.len() <= REDUCE_BLOCK {
            return d.iter().sum();
        }
        let n_blocks = d.len().div_ceil(REDUCE_BLOCK);
        let partials = pool::collect_blocks(n_blocks, |b| {
            let start = b * REDUCE_BLOCK;
            let end = (start + REDUCE_BLOCK).min(d.len());
            d[start..end].iter().sum::<f32>()
        });
        partials.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            return 0.0;
        }
        self.sum() / self.numel() as f32
    }

    /// Maximum element (NaN-propagating max over at least one value).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Column sums of a `[B, D]` tensor, producing `[D]`.
    ///
    /// Canonically blocked over fixed `AXIS0_ROW_BLOCK`-row runs:
    /// each run produces a partial column sum and partials are combined
    /// in run order, identically on the serial and parallel paths.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_axis0 requires a 2-D tensor");
        let (rows, cols) = (self.rows(), self.cols());
        let block_sum = |r0: usize, r1: usize| {
            let mut part = vec![0.0f32; cols];
            for r in r0..r1 {
                for (o, &x) in part.iter_mut().zip(self.row(r)) {
                    *o += x;
                }
            }
            part
        };
        if rows <= AXIS0_ROW_BLOCK {
            return Tensor::from_vec(block_sum(0, rows), &[cols]);
        }
        let n_blocks = rows.div_ceil(AXIS0_ROW_BLOCK);
        let partials = pool::collect_blocks(n_blocks, |b| {
            let r0 = b * AXIS0_ROW_BLOCK;
            block_sum(r0, (r0 + AXIS0_ROW_BLOCK).min(rows))
        });
        let mut out = vec![0.0f32; cols];
        for part in &partials {
            for (o, &x) in out.iter_mut().zip(part) {
                *o += x;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Column means of a `[B, D]` tensor, producing `[D]`.
    pub fn mean_axis0(&self) -> Tensor {
        let rows = self.rows().max(1) as f32;
        self.sum_axis0().mul_scalar(1.0 / rows)
    }

    /// Row sums of a `[B, D]` tensor, producing `[B]`.
    ///
    /// Each output element is one row's serial sum, so the result never
    /// depends on how rows are spread across threads.
    pub fn sum_axis1(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_axis1 requires a 2-D tensor");
        let rows = self.rows();
        let mut data = vec![0.0f32; rows];
        let rpb = pool::rows_per_block(rows, self.numel());
        pool::for_each_row_chunk(&mut data, 1, rpb, |r0, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = self.row(r0 + i).iter().sum();
            }
        });
        Tensor::from_vec(data, &[rows])
    }

    /// Index of the largest value in a 1-D tensor (ties resolve to the
    /// first occurrence).
    pub fn argmax(&self) -> usize {
        assert!(self.numel() > 0, "argmax of empty tensor");
        let mut best = 0;
        let mut best_v = self.data()[0];
        for (i, &v) in self.data().iter().enumerate().skip(1) {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Per-row argmax of a `[B, D]` tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows requires a 2-D tensor");
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for i in 1..row.len() {
                    if row[i] > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Numerically stable row-wise softmax of a `[B, D]` tensor.
    ///
    /// Rows are independent, so the row-parallel result is bit-identical
    /// to the serial one.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax_rows requires a 2-D tensor");
        let (rows, cols) = (self.rows(), self.cols());
        let mut out = self.clone();
        if cols == 0 {
            return out;
        }
        let rpb = pool::rows_per_block(rows, self.numel() * 4);
        pool::for_each_row_chunk(out.data_mut(), cols, rpb, |_, chunk| {
            for row in chunk.chunks_mut(cols) {
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for x in row.iter_mut() {
                    *x = (*x - m).exp();
                    sum += *x;
                }
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        });
        out
    }

    /// Concatenates 2-D tensors along columns (axis 1). All inputs must
    /// share the same row count.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let rows = parts[0].rows();
        let total: usize = parts.iter().map(|p| p.cols()).sum();
        let mut data = Vec::with_capacity(rows * total);
        for r in 0..rows {
            for p in parts {
                assert_eq!(p.rows(), rows, "concat_cols row count mismatch");
                data.extend_from_slice(p.row(r));
            }
        }
        Tensor::from_vec(data, &[rows, total])
    }

    /// Extracts the column range `[lo, hi)` of a 2-D tensor.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "slice_cols requires a 2-D tensor");
        assert!(lo <= hi && hi <= self.cols(), "column range out of bounds");
        let mut data = Vec::with_capacity(self.rows() * (hi - lo));
        for r in 0..self.rows() {
            data.extend_from_slice(&self.row(r)[lo..hi]);
        }
        Tensor::from_vec(data, &[self.rows(), hi - lo])
    }

    /// Gathers the given rows of a 2-D tensor into a new tensor.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "gather_rows requires a 2-D tensor");
        let mut data = Vec::with_capacity(indices.len() * self.cols());
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Tensor::from_vec(data, &[indices.len(), self.cols()])
    }

    /// Squared L2 norm of the whole tensor.
    ///
    /// Canonically blocked like [`Tensor::sum`]: bit-identical for any
    /// thread count.
    pub fn norm_sq(&self) -> f32 {
        let d = self.data();
        if d.len() <= REDUCE_BLOCK {
            return d.iter().map(|&x| x * x).sum();
        }
        let n_blocks = d.len().div_ceil(REDUCE_BLOCK);
        let partials = pool::collect_blocks(n_blocks, |b| {
            let start = b * REDUCE_BLOCK;
            let end = (start + REDUCE_BLOCK).min(d.len());
            d[start..end].iter().map(|&x| x * x).sum::<f32>()
        });
        partials.iter().sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Clamps all elements to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data().iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])
    }

    #[test]
    fn elementwise_arith() {
        let a = t2();
        let b = Tensor::full(&[2, 3], 2.0);
        assert_eq!(a.add(&b).at2(0, 0), 3.0);
        assert_eq!(a.sub(&b).at2(1, 2), 4.0);
        assert_eq!(a.mul(&b).at2(1, 0), 8.0);
        assert_eq!(a.div(&b).at2(0, 1), 1.0);
        assert_eq!(a.neg().at2(0, 0), -1.0);
    }

    #[test]
    fn row_broadcasts() {
        let a = t2();
        let r = Tensor::from_slice(&[1.0, 10.0, 100.0]);
        assert_eq!(a.add_row(&r).row(1), &[5.0, 15.0, 106.0]);
        assert_eq!(a.mul_row(&r).row(0), &[1.0, 20.0, 300.0]);
        assert_eq!(a.sub_row(&r).row(0), &[0.0, -8.0, -97.0]);
    }

    #[test]
    fn reductions() {
        let a = t2();
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.max(), 6.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.sum_axis0().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum_axis1().data(), &[6.0, 15.0]);
        assert_eq!(a.mean_axis0().data(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn argmax_variants() {
        let a = Tensor::from_slice(&[0.1, 0.9, 0.3]);
        assert_eq!(a.argmax(), 1);
        let b = Tensor::from_vec(vec![0.0, 1.0, 5.0, 2.0], &[2, 2]);
        assert_eq!(b.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs must not overflow to NaN.
        assert!(!s.has_non_finite());
        // Monotonicity within the row.
        assert!(s.at2(0, 2) > s.at2(0, 1) && s.at2(0, 1) > s.at2(0, 0));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = t2();
        let left = a.slice_cols(0, 1);
        let right = a.slice_cols(1, 3);
        let back = Tensor::concat_cols(&[&left, &right]);
        assert_eq!(back, a);
    }

    #[test]
    fn gather_rows_selects() {
        let a = t2();
        let g = a.gather_rows(&[1, 1, 0]);
        assert_eq!(g.shape(), &[3, 3]);
        assert_eq!(g.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(g.row(2), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn norms_and_clamp() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.clamp(0.0, 3.5).data(), &[3.0, 3.5]);
    }

    /// Reductions and batched elementwise ops must be bit-identical for
    /// any thread count — the pool's determinism contract.
    #[test]
    fn reductions_are_thread_count_invariant() {
        let _g = crate::pool::test_guard();
        let mut rng = crate::rng::Rng::seed_from_u64(42);
        // Big enough to cross REDUCE_BLOCK and AXIS0_ROW_BLOCK, with an
        // awkward non-divisible tail.
        let a = Tensor::randn(&[603, 97], &mut rng);
        let b = Tensor::randn(&[603, 97], &mut rng);
        let r = Tensor::randn(&[97], &mut rng);
        crate::pool::set_threads(1);
        let serial = (
            a.sum(),
            a.norm_sq(),
            a.sum_axis0(),
            a.sum_axis1(),
            a.softmax_rows(),
            a.add_row(&r),
            a.mul(&b),
        );
        crate::pool::set_threads(5);
        assert_eq!(a.sum().to_bits(), serial.0.to_bits());
        assert_eq!(a.norm_sq().to_bits(), serial.1.to_bits());
        assert_eq!(a.sum_axis0(), serial.2);
        assert_eq!(a.sum_axis1(), serial.3);
        assert_eq!(a.softmax_rows(), serial.4);
        assert_eq!(a.add_row(&r), serial.5);
        assert_eq!(a.mul(&b), serial.6);
        crate::pool::set_threads(1);
    }
}

/// Channel-permutation helpers used by 2-D batch normalization: they
/// move the channel axis of a `[B, C, H, W]` tensor to the last
/// position (`[B*H*W, C]`) and back, so per-channel statistics reduce
/// to per-column statistics.
impl Tensor {
    /// `[B, C, H, W] -> [B*H*W, C]`.
    pub fn bchw_to_nc(&self) -> Tensor {
        assert_eq!(self.ndim(), 4, "bchw_to_nc requires a 4-D tensor");
        let s = self.shape().to_vec();
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        let hw = h * w;
        let mut out = vec![0.0f32; self.numel()];
        let d = self.data();
        for bi in 0..b {
            for ci in 0..c {
                for p in 0..hw {
                    out[(bi * hw + p) * c + ci] = d[(bi * c + ci) * hw + p];
                }
            }
        }
        Tensor::from_vec(out, &[b * hw, c])
    }

    /// `[B*H*W, C] -> [B, C, H, W]` (inverse of [`Tensor::bchw_to_nc`]).
    pub fn nc_to_bchw(&self, b: usize, c: usize, h: usize, w: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "nc_to_bchw requires a 2-D tensor");
        assert_eq!(self.numel(), b * c * h * w, "nc_to_bchw element mismatch");
        let hw = h * w;
        let mut out = vec![0.0f32; self.numel()];
        let d = self.data();
        for bi in 0..b {
            for ci in 0..c {
                for p in 0..hw {
                    out[(bi * c + ci) * hw + p] = d[(bi * hw + p) * c + ci];
                }
            }
        }
        Tensor::from_vec(out, &[b, c, h, w])
    }
}

#[cfg(test)]
mod perm_tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn bchw_nc_roundtrip() {
        let mut rng = Rng::seed_from_u64(77);
        let x = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let nc = x.bchw_to_nc();
        assert_eq!(nc.shape(), &[2 * 4 * 5, 3]);
        assert_eq!(nc.nc_to_bchw(2, 3, 4, 5), x);
    }

    #[test]
    fn bchw_nc_places_channels_in_columns() {
        // One batch, two channels of constant values 1 and 2.
        let mut data = vec![1.0f32; 4];
        data.extend(vec![2.0f32; 4]);
        let x = Tensor::from_vec(data, &[1, 2, 2, 2]);
        let nc = x.bchw_to_nc();
        for r in 0..4 {
            assert_eq!(nc.row(r), &[1.0, 2.0]);
        }
    }
}
