//! Elementwise arithmetic, row-broadcast operations and reductions.
//!
//! Broadcasting is intentionally restricted to the two patterns the
//! neural-network layers need: scalar ⊕ tensor and `[B, D] ⊕ [D]`
//! (row broadcast). Anything fancier would be dead weight.

use crate::tensor::Tensor;

impl Tensor {
    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a / b)
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Elementwise square.
    pub fn sqr(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Adds a `[D]` vector to every row of a `[B, D]` tensor.
    pub fn add_row(&self, row: &Tensor) -> Tensor {
        self.row_broadcast(row, |a, b| a + b)
    }

    /// Subtracts a `[D]` vector from every row of a `[B, D]` tensor.
    pub fn sub_row(&self, row: &Tensor) -> Tensor {
        self.row_broadcast(row, |a, b| a - b)
    }

    /// Multiplies every row of a `[B, D]` tensor by a `[D]` vector.
    pub fn mul_row(&self, row: &Tensor) -> Tensor {
        self.row_broadcast(row, |a, b| a * b)
    }

    /// Divides every row of a `[B, D]` tensor by a `[D]` vector.
    pub fn div_row(&self, row: &Tensor) -> Tensor {
        self.row_broadcast(row, |a, b| a / b)
    }

    fn row_broadcast(&self, row: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.ndim(), 2, "row broadcast requires a 2-D tensor");
        assert_eq!(
            row.numel(),
            self.cols(),
            "row length {} does not match columns {}",
            row.numel(),
            self.cols()
        );
        let cols = self.cols();
        let rv = row.data();
        let data = self
            .data()
            .iter()
            .enumerate()
            .map(|(i, &a)| f(a, rv[i % cols]))
            .collect();
        Tensor::from_vec(data, self.shape())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            return 0.0;
        }
        self.sum() / self.numel() as f32
    }

    /// Maximum element (NaN-propagating max over at least one value).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Column sums of a `[B, D]` tensor, producing `[D]`.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_axis0 requires a 2-D tensor");
        let (rows, cols) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            let row = self.row(r);
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Column means of a `[B, D]` tensor, producing `[D]`.
    pub fn mean_axis0(&self) -> Tensor {
        let rows = self.rows().max(1) as f32;
        self.sum_axis0().mul_scalar(1.0 / rows)
    }

    /// Row sums of a `[B, D]` tensor, producing `[B]`.
    pub fn sum_axis1(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_axis1 requires a 2-D tensor");
        let data = (0..self.rows())
            .map(|r| self.row(r).iter().sum())
            .collect();
        Tensor::from_vec(data, &[self.rows()])
    }

    /// Index of the largest value in a 1-D tensor (ties resolve to the
    /// first occurrence).
    pub fn argmax(&self) -> usize {
        assert!(self.numel() > 0, "argmax of empty tensor");
        let mut best = 0;
        let mut best_v = self.data()[0];
        for (i, &v) in self.data().iter().enumerate().skip(1) {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Per-row argmax of a `[B, D]` tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows requires a 2-D tensor");
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for i in 1..row.len() {
                    if row[i] > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Numerically stable row-wise softmax of a `[B, D]` tensor.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax_rows requires a 2-D tensor");
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        out
    }

    /// Concatenates 2-D tensors along columns (axis 1). All inputs must
    /// share the same row count.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let rows = parts[0].rows();
        let total: usize = parts.iter().map(|p| p.cols()).sum();
        let mut data = Vec::with_capacity(rows * total);
        for r in 0..rows {
            for p in parts {
                assert_eq!(p.rows(), rows, "concat_cols row count mismatch");
                data.extend_from_slice(p.row(r));
            }
        }
        Tensor::from_vec(data, &[rows, total])
    }

    /// Extracts the column range `[lo, hi)` of a 2-D tensor.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "slice_cols requires a 2-D tensor");
        assert!(lo <= hi && hi <= self.cols(), "column range out of bounds");
        let mut data = Vec::with_capacity(self.rows() * (hi - lo));
        for r in 0..self.rows() {
            data.extend_from_slice(&self.row(r)[lo..hi]);
        }
        Tensor::from_vec(data, &[self.rows(), hi - lo])
    }

    /// Gathers the given rows of a 2-D tensor into a new tensor.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "gather_rows requires a 2-D tensor");
        let mut data = Vec::with_capacity(indices.len() * self.cols());
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Tensor::from_vec(data, &[indices.len(), self.cols()])
    }

    /// Squared L2 norm of the whole tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Clamps all elements to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data().iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])
    }

    #[test]
    fn elementwise_arith() {
        let a = t2();
        let b = Tensor::full(&[2, 3], 2.0);
        assert_eq!(a.add(&b).at2(0, 0), 3.0);
        assert_eq!(a.sub(&b).at2(1, 2), 4.0);
        assert_eq!(a.mul(&b).at2(1, 0), 8.0);
        assert_eq!(a.div(&b).at2(0, 1), 1.0);
        assert_eq!(a.neg().at2(0, 0), -1.0);
    }

    #[test]
    fn row_broadcasts() {
        let a = t2();
        let r = Tensor::from_slice(&[1.0, 10.0, 100.0]);
        assert_eq!(a.add_row(&r).row(1), &[5.0, 15.0, 106.0]);
        assert_eq!(a.mul_row(&r).row(0), &[1.0, 20.0, 300.0]);
        assert_eq!(a.sub_row(&r).row(0), &[0.0, -8.0, -97.0]);
    }

    #[test]
    fn reductions() {
        let a = t2();
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.max(), 6.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.sum_axis0().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum_axis1().data(), &[6.0, 15.0]);
        assert_eq!(a.mean_axis0().data(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn argmax_variants() {
        let a = Tensor::from_slice(&[0.1, 0.9, 0.3]);
        assert_eq!(a.argmax(), 1);
        let b = Tensor::from_vec(vec![0.0, 1.0, 5.0, 2.0], &[2, 2]);
        assert_eq!(b.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs must not overflow to NaN.
        assert!(!s.has_non_finite());
        // Monotonicity within the row.
        assert!(s.at2(0, 2) > s.at2(0, 1) && s.at2(0, 1) > s.at2(0, 0));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = t2();
        let left = a.slice_cols(0, 1);
        let right = a.slice_cols(1, 3);
        let back = Tensor::concat_cols(&[&left, &right]);
        assert_eq!(back, a);
    }

    #[test]
    fn gather_rows_selects() {
        let a = t2();
        let g = a.gather_rows(&[1, 1, 0]);
        assert_eq!(g.shape(), &[3, 3]);
        assert_eq!(g.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(g.row(2), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn norms_and_clamp() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.clamp(0.0, 3.5).data(), &[3.0, 3.5]);
    }
}

/// Channel-permutation helpers used by 2-D batch normalization: they
/// move the channel axis of a `[B, C, H, W]` tensor to the last
/// position (`[B*H*W, C]`) and back, so per-channel statistics reduce
/// to per-column statistics.
impl Tensor {
    /// `[B, C, H, W] -> [B*H*W, C]`.
    pub fn bchw_to_nc(&self) -> Tensor {
        assert_eq!(self.ndim(), 4, "bchw_to_nc requires a 4-D tensor");
        let s = self.shape().to_vec();
        let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
        let hw = h * w;
        let mut out = vec![0.0f32; self.numel()];
        let d = self.data();
        for bi in 0..b {
            for ci in 0..c {
                for p in 0..hw {
                    out[(bi * hw + p) * c + ci] = d[(bi * c + ci) * hw + p];
                }
            }
        }
        Tensor::from_vec(out, &[b * hw, c])
    }

    /// `[B*H*W, C] -> [B, C, H, W]` (inverse of [`Tensor::bchw_to_nc`]).
    pub fn nc_to_bchw(&self, b: usize, c: usize, h: usize, w: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "nc_to_bchw requires a 2-D tensor");
        assert_eq!(self.numel(), b * c * h * w, "nc_to_bchw element mismatch");
        let hw = h * w;
        let mut out = vec![0.0f32; self.numel()];
        let d = self.data();
        for bi in 0..b {
            for ci in 0..c {
                for p in 0..hw {
                    out[(bi * c + ci) * hw + p] = d[(bi * hw + p) * c + ci];
                }
            }
        }
        Tensor::from_vec(out, &[b, c, h, w])
    }
}

#[cfg(test)]
mod perm_tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn bchw_nc_roundtrip() {
        let mut rng = Rng::seed_from_u64(77);
        let x = Tensor::randn(&[2, 3, 4, 5], &mut rng);
        let nc = x.bchw_to_nc();
        assert_eq!(nc.shape(), &[2 * 4 * 5, 3]);
        assert_eq!(nc.nc_to_bchw(2, 3, 4, 5), x);
    }

    #[test]
    fn bchw_nc_places_channels_in_columns() {
        // One batch, two channels of constant values 1 and 2.
        let mut data = vec![1.0f32; 4];
        data.extend(vec![2.0f32; 4]);
        let x = Tensor::from_vec(data, &[1, 2, 2, 2]);
        let nc = x.bchw_to_nc();
        for r in 0..4 {
            assert_eq!(nc.row(r), &[1.0, 2.0]);
        }
    }
}
