//! Dense, contiguous, row-major `f32` tensors.
//!
//! The tensor type is deliberately simple: owned `Vec<f32>` storage and
//! an explicit shape. All views are materialized (no stride tricks);
//! the workloads in this repository are dominated by matmul/conv
//! kernels, so copy costs for reshapes are negligible and the
//! simplicity pays for itself in the autodiff layer.

use crate::pool;
use crate::rng::Rng;
use std::fmt;

/// A dense row-major tensor of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} values]", self.data.len())
        }
    }
}

fn numel_of(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl Tensor {
    /// Builds a tensor from raw data and a shape. Panics if the element
    /// count does not match the shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel_of(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// A 1-D tensor wrapping a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: vec![data.len()],
        }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: vec![0.0; numel_of(shape)],
            shape: shape.to_vec(),
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            data: vec![value; numel_of(shape)],
            shape: shape.to_vec(),
        }
    }

    /// Standard-normal tensor.
    pub fn randn(shape: &[usize], rng: &mut Rng) -> Self {
        let data = (0..numel_of(shape)).map(|_| rng.normal() as f32).collect();
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Uniform tensor in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let data = (0..numel_of(shape))
            .map(|_| rng.uniform(lo as f64, hi as f64) as f32)
            .collect();
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The shape as a slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Raw data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows of a 2-D tensor.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(self.ndim(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(self.ndim(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Element access for a 2-D tensor.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for a 2-D tensor.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Returns a row of a 2-D tensor as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row view of a 2-D tensor.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.ndim(), 2, "row_mut() requires a 2-D tensor");
        let cols = self.shape[1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Reshape into a new shape with the same element count. The data is
    /// shared by move (row-major order preserved).
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.numel(),
            numel_of(shape),
            "cannot reshape {:?} into {:?}",
            self.shape,
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// Applies `f` elementwise, producing a new tensor.
    ///
    /// Large tensors are chunked across the worker pool; every element
    /// is produced independently, so the result never depends on the
    /// thread count (see [`crate::pool`]).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = &self.data;
        let mut data = vec![0.0f32; src.len()];
        let epb = pool::rows_per_block(src.len(), src.len());
        pool::for_each_row_chunk(&mut data, 1, epb, |i0, chunk| {
            let n = chunk.len();
            for (o, &x) in chunk.iter_mut().zip(&src[i0..i0 + n]) {
                *o = f(x);
            }
        });
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` elementwise in place (chunked like [`Tensor::map`]).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let len = self.data.len();
        let epb = pool::rows_per_block(len, len);
        pool::for_each_row_chunk(&mut self.data, 1, epb, |_, chunk| {
            for x in chunk {
                *x = f(*x);
            }
        });
    }

    /// Combines two same-shape tensors elementwise (chunked like
    /// [`Tensor::map`]).
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip requires matching shapes ({:?} vs {:?})",
            self.shape, other.shape
        );
        let (a, b) = (&self.data, &other.data);
        let mut data = vec![0.0f32; a.len()];
        let epb = pool::rows_per_block(a.len(), a.len());
        pool::for_each_row_chunk(&mut data, 1, epb, |i0, chunk| {
            let n = chunk.len();
            for ((o, &av), &bv) in chunk.iter_mut().zip(&a[i0..i0 + n]).zip(&b[i0..i0 + n]) {
                *o = f(av, bv);
            }
        });
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` elementwise (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Fills with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3, 2]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[4]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2, 2], 7.0).data().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn reshape_preserves_order() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.at2(0, 1), 2.0);
        assert_eq!(r.at2(2, 1), 6.0);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let b = Tensor::from_slice(&[2.0, 2.0, 2.0]);
        assert_eq!(a.map(|x| x.abs()).data(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.zip(&b, |x, y| x * y).data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn randn_is_seed_deterministic() {
        let mut r1 = Rng::seed_from_u64(5);
        let mut r2 = Rng::seed_from_u64(5);
        assert_eq!(
            Tensor::randn(&[4, 4], &mut r1).data(),
            Tensor::randn(&[4, 4], &mut r2).data()
        );
    }
}
