//! 2-D convolution primitives.
//!
//! Three primitives cover everything the DCGAN-style networks need:
//! the forward convolution, the gradient with respect to the input, and
//! the gradient with respect to the weights. Transposed convolution
//! (`DeConv` in the paper's Appendix A.1.1) is the input-gradient
//! primitive used as a forward pass, so it comes for free.
//!
//! The record matrices produced by the matrix-form data transformation
//! are tiny (≤ 16×16 spatial, ≤ 64 channels), so direct loops beat the
//! bookkeeping overhead of an im2col at these sizes while staying
//! obviously correct.

use crate::tensor::Tensor;

/// Shape bookkeeping for a convolution: `(H + 2p - K) / s + 1`.
#[inline]
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(
        input + 2 * pad >= kernel,
        "kernel {kernel} larger than padded input {input}+2*{pad}"
    );
    (input + 2 * pad - kernel) / stride + 1
}

/// Output spatial size of a transposed convolution:
/// `(H - 1) * s - 2p + K`.
#[inline]
pub fn conv_transpose_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (input - 1) * stride + kernel - 2 * pad
}

fn check4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(t.ndim(), 4, "{what} must be 4-D [N, C, H, W]");
    let s = t.shape();
    (s[0], s[1], s[2], s[3])
}

/// Forward convolution.
///
/// * `x`: `[B, C, H, W]`
/// * `w`: `[OC, C, KH, KW]`
///
/// Returns `[B, OC, OH, OW]`.
pub fn conv2d(x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> Tensor {
    let (b, c, h, wd) = check4(x, "conv2d input");
    let (oc, cw, kh, kw) = check4(w, "conv2d weight");
    assert_eq!(c, cw, "channel mismatch: input {c}, weight {cw}");
    let oh = conv_out_dim(h, kh, stride, pad);
    let ow = conv_out_dim(wd, kw, stride, pad);
    let mut out = vec![0.0f32; b * oc * oh * ow];
    let xd = x.data();
    let wdat = w.data();
    for bi in 0..b {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * wd + ix as usize;
                                let wi = ((o * c + ci) * kh + ky) * kw + kx;
                                acc += xd[xi] * wdat[wi];
                            }
                        }
                    }
                    out[((bi * oc + o) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, &[b, oc, oh, ow])
}

/// Gradient of a convolution with respect to its input.
///
/// * `gy`: `[B, OC, OH, OW]` upstream gradient
/// * `w`: `[OC, C, KH, KW]`
/// * `input_hw`: the `(H, W)` of the original input
///
/// Returns `[B, C, H, W]`. This is also the forward pass of a
/// transposed convolution.
pub fn conv2d_grad_input(
    gy: &Tensor,
    w: &Tensor,
    input_hw: (usize, usize),
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, oc, oh, ow) = check4(gy, "conv2d_grad_input upstream");
    let (ocw, c, kh, kw) = check4(w, "conv2d_grad_input weight");
    assert_eq!(oc, ocw, "output channel mismatch");
    let (h, wd) = input_hw;
    let mut gx = vec![0.0f32; b * c * h * wd];
    let gyd = gy.data();
    let wdat = w.data();
    for bi in 0..b {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gyd[((bi * oc + o) * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * wd + ix as usize;
                                let wi = ((o * c + ci) * kh + ky) * kw + kx;
                                gx[xi] += g * wdat[wi];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(gx, &[b, c, h, wd])
}

/// Gradient of a convolution with respect to its weights.
///
/// * `x`: `[B, C, H, W]` original input
/// * `gy`: `[B, OC, OH, OW]` upstream gradient
/// * `kernel_hw`: the `(KH, KW)` of the weight
///
/// Returns `[OC, C, KH, KW]`.
pub fn conv2d_grad_weight(
    x: &Tensor,
    gy: &Tensor,
    kernel_hw: (usize, usize),
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, c, h, wd) = check4(x, "conv2d_grad_weight input");
    let (b2, oc, oh, ow) = check4(gy, "conv2d_grad_weight upstream");
    assert_eq!(b, b2, "batch mismatch");
    let (kh, kw) = kernel_hw;
    let mut gw = vec![0.0f32; oc * c * kh * kw];
    let xd = x.data();
    let gyd = gy.data();
    for bi in 0..b {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gyd[((bi * oc + o) * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                let xi = ((bi * c + ci) * h + iy as usize) * wd + ix as usize;
                                let wi = ((o * c + ci) * kh + ky) * kw + kx;
                                gw[wi] += g * xd[xi];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(gw, &[oc, c, kh, kw])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn out_dims() {
        assert_eq!(conv_out_dim(16, 4, 2, 1), 8);
        assert_eq!(conv_out_dim(8, 3, 1, 1), 8);
        assert_eq!(conv_transpose_out_dim(8, 4, 2, 1), 16);
        // The two are inverses for the DCGAN geometry.
        assert_eq!(conv_transpose_out_dim(conv_out_dim(16, 4, 2, 1), 4, 2, 1), 16);
    }

    #[test]
    fn identity_kernel_passthrough() {
        // A 1x1 kernel of weight 1 reproduces the input.
        let mut rng = Rng::seed_from_u64(1);
        let x = Tensor::randn(&[2, 1, 4, 4], &mut rng);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d(&x, &w, 1, 0);
        assert_eq!(y, x);
    }

    #[test]
    fn known_3x3_convolution() {
        // Input: 1..9 in a 3x3 grid, 2x2 averaging-style kernel of ones,
        // stride 1, no padding.
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &w, 1, 0);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn padding_behaves_as_zeros() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, 1, 1);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // Each output sees the full 2x2 of ones (corners of the padded
        // input contribute zero).
        assert_eq!(y.data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    /// Finite-difference check of both gradient primitives.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from_u64(2);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let (stride, pad) = (2, 1);
        // Loss = sum(conv(x, w)); upstream gradient is all ones.
        let y = conv2d(&x, &w, stride, pad);
        let gy = Tensor::ones(y.shape());
        let gx = conv2d_grad_input(&gy, &w, (5, 5), stride, pad);
        let gw = conv2d_grad_weight(&x, &gy, (3, 3), stride, pad);

        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor| conv2d(x, w, stride, pad).sum();
        for &i in &[0usize, 7, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 1e-2,
                "input grad {i}: fd {fd} vs analytic {}",
                gx.data()[i]
            );
        }
        for &i in &[0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[i]).abs() < 1e-2,
                "weight grad {i}: fd {fd} vs analytic {}",
                gw.data()[i]
            );
        }
    }

    #[test]
    fn transpose_conv_upsamples() {
        // grad-input primitive as a forward pass: 1x1 spatial input with a
        // stride-2 4x4 kernel must produce a 4x4 map when unpadded.
        let mut rng = Rng::seed_from_u64(3);
        let z = Tensor::randn(&[1, 3, 1, 1], &mut rng);
        let w = Tensor::randn(&[3, 2, 4, 4], &mut rng); // [IC(=OC of grad), C, KH, KW]
        let out_hw = conv_transpose_out_dim(1, 4, 2, 0);
        let y = conv2d_grad_input(&z, &w, (out_hw, out_hw), 2, 0);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }
}
