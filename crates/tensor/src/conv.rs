//! 2-D convolution primitives.
//!
//! Three primitives cover everything the DCGAN-style networks need:
//! the forward convolution, the gradient with respect to the input, and
//! the gradient with respect to the weights. Transposed convolution
//! (`DeConv` in the paper's Appendix A.1.1) is the input-gradient
//! primitive used as a forward pass, so it comes for free.
//!
//! Small problems take a direct loop; above [`pool::PAR_MIN_WORK`]
//! multiply-adds the forward pass lowers to **im2col + matmul**, which
//! reuses the parallel blocked matmul kernel, and the gradients
//! parallelize over the batch. The im2col patch layout is ordered
//! `[ci][ky][kx]` — the exact accumulation order of the direct loop —
//! and path selection depends only on shapes, so results are
//! bit-identical for any thread count (see [`crate::pool`]).

use crate::linalg::observe_kernel_work;
use crate::pool;
use crate::tensor::Tensor;
use std::sync::OnceLock;

static CONV2D_WORK: OnceLock<&'static daisy_telemetry::metrics::Histogram> = OnceLock::new();

/// Upper bound on the materialized im2col patch matrix (in `f32`
/// elements, 64 MiB); bigger problems fall back to the direct loop,
/// which is still batch-parallel.
const IM2COL_MAX_PATCH_ELEMS: usize = 1 << 24;

/// Batch rows per partial in the canonically blocked weight gradient.
/// Fixed — never a function of the thread count — so the accumulation
/// order (and hence the bits) never changes with parallelism.
const GW_BATCH_BLOCK: usize = 8;

/// Shape bookkeeping for a convolution: `(H + 2p - K) / s + 1`.
#[inline]
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(
        input + 2 * pad >= kernel,
        "kernel {kernel} larger than padded input {input}+2*{pad}"
    );
    (input + 2 * pad - kernel) / stride + 1
}

/// Output spatial size of a transposed convolution:
/// `(H - 1) * s - 2p + K`.
#[inline]
pub fn conv_transpose_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (input - 1) * stride + kernel - 2 * pad
}

fn check4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(t.ndim(), 4, "{what} must be 4-D [N, C, H, W]");
    let s = t.shape();
    (s[0], s[1], s[2], s[3])
}

/// Forward convolution.
///
/// * `x`: `[B, C, H, W]`
/// * `w`: `[OC, C, KH, KW]`
///
/// Returns `[B, OC, OH, OW]`. Lowered to im2col + matmul above a size
/// threshold; bit-identical for any thread count either way.
pub fn conv2d(x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> Tensor {
    let (b, c, h, wd) = check4(x, "conv2d input");
    let (oc, cw, kh, kw) = check4(w, "conv2d weight");
    assert_eq!(c, cw, "channel mismatch: input {c}, weight {cw}");
    let oh = conv_out_dim(h, kh, stride, pad);
    let ow = conv_out_dim(wd, kw, stride, pad);
    let macs = b * oc * oh * ow * c * kh * kw;
    let patch_elems = b * oh * ow * c * kh * kw;
    observe_kernel_work(&CONV2D_WORK, "kernel.conv2d.work", macs);
    // The im2col path lowers onto matmul, so profiles show that share
    // as a conv2d/matmul child phase.
    daisy_telemetry::phase_scope!("conv2d");
    // Path choice is a pure function of the shapes — never of the
    // thread count — so it cannot break run-to-run determinism.
    if macs >= pool::PAR_MIN_WORK && patch_elems <= IM2COL_MAX_PATCH_ELEMS {
        conv2d_im2col(x, w, stride, pad, (oh, ow))
    } else {
        conv2d_direct(x, w, stride, pad, (oh, ow))
    }
}

/// Direct-loop forward path, parallel over the batch (each sample's
/// output slice is disjoint, accumulation order unchanged).
fn conv2d_direct(
    x: &Tensor,
    w: &Tensor,
    stride: usize,
    pad: usize,
    out_hw: (usize, usize),
) -> Tensor {
    let (b, c, h, wd) = check4(x, "conv2d input");
    let (oc, _, kh, kw) = check4(w, "conv2d weight");
    let (oh, ow) = out_hw;
    let mut out = vec![0.0f32; b * oc * oh * ow];
    let xd = x.data();
    let wdat = w.data();
    let per_b = oc * oh * ow;
    let macs = b * per_b * c * kh * kw;
    pool::for_each_row_chunk(
        &mut out,
        per_b,
        pool::rows_per_block(b, macs),
        |b0, chunk| {
            for (i, obuf) in chunk.chunks_mut(per_b).enumerate() {
                let bi = b0 + i;
                for o in 0..oc {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = 0.0f32;
                            for ci in 0..c {
                                for ky in 0..kh {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..kw {
                                        let ix = (ox * stride + kx) as isize - pad as isize;
                                        if ix < 0 || ix >= wd as isize {
                                            continue;
                                        }
                                        let xi =
                                            ((bi * c + ci) * h + iy as usize) * wd + ix as usize;
                                        let wi = ((o * c + ci) * kh + ky) * kw + kx;
                                        acc += xd[xi] * wdat[wi];
                                    }
                                }
                            }
                            obuf[(o * oh + oy) * ow + ox] = acc;
                        }
                    }
                }
            }
        },
    );
    Tensor::from_vec(out, &[b, oc, oh, ow])
}

/// im2col forward path: materialize `[B*OH*OW, C*KH*KW]` patches (in
/// the direct loop's `[ci][ky][kx]` order), multiply by the `[OC,
/// C*KH*KW]` weight view with the parallel `matmul_nt`, and permute the
/// result back to `[B, OC, OH, OW]`.
fn conv2d_im2col(
    x: &Tensor,
    w: &Tensor,
    stride: usize,
    pad: usize,
    out_hw: (usize, usize),
) -> Tensor {
    let (b, c, h, wd) = check4(x, "conv2d input");
    let (oc, _, kh, kw) = check4(w, "conv2d weight");
    let (oh, ow) = out_hw;
    let xd = x.data();
    let patch = c * kh * kw;
    let rows = b * oh * ow;
    let mut patches = vec![0.0f32; rows * patch];
    pool::for_each_row_chunk(
        &mut patches,
        patch,
        pool::rows_per_block(rows, rows * patch),
        |r0, chunk| {
            for (i, prow) in chunk.chunks_mut(patch).enumerate() {
                let r = r0 + i;
                let bi = r / (oh * ow);
                let rem = r % (oh * ow);
                let (oy, ox) = (rem / ow, rem % ow);
                let mut p = 0;
                for ci in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            prow[p] = if iy >= 0 && iy < h as isize && ix >= 0 && ix < wd as isize {
                                xd[((bi * c + ci) * h + iy as usize) * wd + ix as usize]
                            } else {
                                0.0
                            };
                            p += 1;
                        }
                    }
                }
            }
        },
    );
    let patches = Tensor::from_vec(patches, &[rows, patch]);
    let flat = patches.matmul_nt(&w.reshape(&[oc, patch])); // [B*OH*OW, OC]
    let fd = flat.data();
    let mut out = vec![0.0f32; b * oc * oh * ow];
    let per_b = oc * oh * ow;
    let ohw = oh * ow;
    pool::for_each_row_chunk(
        &mut out,
        per_b,
        pool::rows_per_block(b, b * per_b),
        |b0, chunk| {
            for (i, obuf) in chunk.chunks_mut(per_b).enumerate() {
                let base = (b0 + i) * ohw;
                for o in 0..oc {
                    for p in 0..ohw {
                        obuf[o * ohw + p] = fd[(base + p) * oc + o];
                    }
                }
            }
        },
    );
    Tensor::from_vec(out, &[b, oc, oh, ow])
}

/// Gradient of a convolution with respect to its input.
///
/// * `gy`: `[B, OC, OH, OW]` upstream gradient
/// * `w`: `[OC, C, KH, KW]`
/// * `input_hw`: the `(H, W)` of the original input
///
/// Returns `[B, C, H, W]`. This is also the forward pass of a
/// transposed convolution. Parallel over the batch; per-sample
/// accumulation order matches the serial loop, so results are
/// bit-identical for any thread count.
pub fn conv2d_grad_input(
    gy: &Tensor,
    w: &Tensor,
    input_hw: (usize, usize),
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, oc, oh, ow) = check4(gy, "conv2d_grad_input upstream");
    let (ocw, c, kh, kw) = check4(w, "conv2d_grad_input weight");
    assert_eq!(
        oc,
        ocw,
        "output channel mismatch: upstream {:?} vs weight {:?}",
        gy.shape(),
        w.shape()
    );
    let (h, wd) = input_hw;
    let mut gx = vec![0.0f32; b * c * h * wd];
    let gyd = gy.data();
    let wdat = w.data();
    let per_b = c * h * wd;
    let macs = b * oc * oh * ow * c * kh * kw;
    pool::for_each_row_chunk(
        &mut gx,
        per_b,
        pool::rows_per_block(b, macs),
        |b0, chunk| {
            for (i, gbuf) in chunk.chunks_mut(per_b).enumerate() {
                let bi = b0 + i;
                for o in 0..oc {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = gyd[((bi * oc + o) * oh + oy) * ow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            for ci in 0..c {
                                for ky in 0..kh {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..kw {
                                        let ix = (ox * stride + kx) as isize - pad as isize;
                                        if ix < 0 || ix >= wd as isize {
                                            continue;
                                        }
                                        let xi = (ci * h + iy as usize) * wd + ix as usize;
                                        let wi = ((o * c + ci) * kh + ky) * kw + kx;
                                        gbuf[xi] += g * wdat[wi];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        },
    );
    Tensor::from_vec(gx, &[b, c, h, wd])
}

/// Gradient of a convolution with respect to its weights.
///
/// * `x`: `[B, C, H, W]` original input
/// * `gy`: `[B, OC, OH, OW]` upstream gradient
/// * `kernel_hw`: the `(KH, KW)` of the weight
///
/// Returns `[OC, C, KH, KW]`. Canonically blocked over fixed
/// `GW_BATCH_BLOCK`-sample runs of the batch: each run produces a
/// partial weight gradient and partials combine in run order, on the
/// serial path too — bit-identical for any thread count.
pub fn conv2d_grad_weight(
    x: &Tensor,
    gy: &Tensor,
    kernel_hw: (usize, usize),
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, c, h, wd) = check4(x, "conv2d_grad_weight input");
    let (b2, oc, oh, ow) = check4(gy, "conv2d_grad_weight upstream");
    assert_eq!(
        b,
        b2,
        "batch mismatch: input {:?} vs upstream {:?}",
        x.shape(),
        gy.shape()
    );
    let (kh, kw) = kernel_hw;
    let xd = x.data();
    let gyd = gy.data();
    let block_gw = |b0: usize, b1: usize| {
        let mut gw = vec![0.0f32; oc * c * kh * kw];
        for bi in b0..b1 {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gyd[((bi * oc + o) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        for ci in 0..c {
                            for ky in 0..kh {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if ix < 0 || ix >= wd as isize {
                                        continue;
                                    }
                                    let xi = ((bi * c + ci) * h + iy as usize) * wd + ix as usize;
                                    let wi = ((o * c + ci) * kh + ky) * kw + kx;
                                    gw[wi] += g * xd[xi];
                                }
                            }
                        }
                    }
                }
            }
        }
        gw
    };
    if b <= GW_BATCH_BLOCK {
        return Tensor::from_vec(block_gw(0, b), &[oc, c, kh, kw]);
    }
    let n_blocks = b.div_ceil(GW_BATCH_BLOCK);
    let partials = pool::collect_blocks(n_blocks, |i| {
        let b0 = i * GW_BATCH_BLOCK;
        block_gw(b0, (b0 + GW_BATCH_BLOCK).min(b))
    });
    let mut gw = vec![0.0f32; oc * c * kh * kw];
    for part in &partials {
        for (o, &v) in gw.iter_mut().zip(part) {
            *o += v;
        }
    }
    Tensor::from_vec(gw, &[oc, c, kh, kw])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn out_dims() {
        assert_eq!(conv_out_dim(16, 4, 2, 1), 8);
        assert_eq!(conv_out_dim(8, 3, 1, 1), 8);
        assert_eq!(conv_transpose_out_dim(8, 4, 2, 1), 16);
        // The two are inverses for the DCGAN geometry.
        assert_eq!(
            conv_transpose_out_dim(conv_out_dim(16, 4, 2, 1), 4, 2, 1),
            16
        );
    }

    #[test]
    fn identity_kernel_passthrough() {
        // A 1x1 kernel of weight 1 reproduces the input.
        let mut rng = Rng::seed_from_u64(1);
        let x = Tensor::randn(&[2, 1, 4, 4], &mut rng);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d(&x, &w, 1, 0);
        assert_eq!(y, x);
    }

    #[test]
    fn known_3x3_convolution() {
        // Input: 1..9 in a 3x3 grid, 2x2 averaging-style kernel of ones,
        // stride 1, no padding.
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &w, 1, 0);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn padding_behaves_as_zeros() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, 1, 1);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // Each output sees the full 2x2 of ones (corners of the padded
        // input contribute zero).
        assert_eq!(y.data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    /// Finite-difference check of both gradient primitives.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from_u64(2);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let (stride, pad) = (2, 1);
        // Loss = sum(conv(x, w)); upstream gradient is all ones.
        let y = conv2d(&x, &w, stride, pad);
        let gy = Tensor::ones(y.shape());
        let gx = conv2d_grad_input(&gy, &w, (5, 5), stride, pad);
        let gw = conv2d_grad_weight(&x, &gy, (3, 3), stride, pad);

        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor| conv2d(x, w, stride, pad).sum();
        for &i in &[0usize, 7, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 1e-2,
                "input grad {i}: fd {fd} vs analytic {}",
                gx.data()[i]
            );
        }
        for &i in &[0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[i]).abs() < 1e-2,
                "weight grad {i}: fd {fd} vs analytic {}",
                gw.data()[i]
            );
        }
    }

    #[test]
    fn transpose_conv_upsamples() {
        // grad-input primitive as a forward pass: 1x1 spatial input with a
        // stride-2 4x4 kernel must produce a 4x4 map when unpadded.
        let mut rng = Rng::seed_from_u64(3);
        let z = Tensor::randn(&[1, 3, 1, 1], &mut rng);
        let w = Tensor::randn(&[3, 2, 4, 4], &mut rng); // [IC(=OC of grad), C, KH, KW]
        let out_hw = conv_transpose_out_dim(1, 4, 2, 0);
        let y = conv2d_grad_input(&z, &w, (out_hw, out_hw), 2, 0);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    /// The im2col lowering and the direct loop must agree exactly —
    /// the patch layout reproduces the direct loop's accumulation order.
    #[test]
    fn im2col_matches_direct() {
        let mut rng = Rng::seed_from_u64(9);
        for &(b, c, h, oc, k, stride, pad) in &[
            (4usize, 3usize, 9usize, 5usize, 3usize, 1usize, 1usize), // odd sizes
            (2, 2, 8, 4, 4, 2, 1),                                    // DCGAN geometry
            (1, 1, 5, 1, 5, 1, 0),                                    // kernel == input
        ] {
            let x = Tensor::randn(&[b, c, h, h], &mut rng);
            let w = Tensor::randn(&[oc, c, k, k], &mut rng);
            let oh = conv_out_dim(h, k, stride, pad);
            let direct = conv2d_direct(&x, &w, stride, pad, (oh, oh));
            let lowered = conv2d_im2col(&x, &w, stride, pad, (oh, oh));
            assert_eq!(direct.shape(), lowered.shape());
            for (a, b) in direct.data().iter().zip(lowered.data()) {
                assert_eq!(a, b, "im2col diverged from direct conv");
            }
        }
    }

    /// Conv kernels must be bit-identical for any thread count.
    #[test]
    fn conv_is_thread_count_invariant() {
        let _g = crate::pool::test_guard();
        let mut rng = Rng::seed_from_u64(10);
        let x = Tensor::randn(&[19, 4, 10, 10], &mut rng); // awkward batch
        let w = Tensor::randn(&[6, 4, 3, 3], &mut rng);
        let y = conv2d(&x, &w, 1, 1);
        let gy = Tensor::randn(y.shape(), &mut rng);
        crate::pool::set_threads(1);
        let (y1, gx1, gw1) = (
            conv2d(&x, &w, 1, 1),
            conv2d_grad_input(&gy, &w, (10, 10), 1, 1),
            conv2d_grad_weight(&x, &gy, (3, 3), 1, 1),
        );
        crate::pool::set_threads(4);
        assert_eq!(conv2d(&x, &w, 1, 1), y1);
        assert_eq!(conv2d_grad_input(&gy, &w, (10, 10), 1, 1), gx1);
        assert_eq!(conv2d_grad_weight(&x, &gy, (3, 3), 1, 1), gw1);
        crate::pool::set_threads(1);
    }
}
