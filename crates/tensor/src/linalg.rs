//! Matrix multiplication and transposition kernels.
//!
//! All three matmul variants are row-partitioned across the worker pool
//! ([`crate::pool`]) above a size threshold and tiled for cache reuse
//! where that does not change the accumulation order. Every output
//! element is computed entirely within one row block, with additions in
//! ascending-`k` order — exactly the order of the serial reference loop
//! — so results are bit-identical for any thread count and any block
//! size. See the determinism contract in [`crate::pool`].
//!
//! The plain [`Tensor::matmul`] streams the output row and a row of `b`
//! in the inner loop (i-k-j order), which autovectorizes well, and skips
//! zero `a` entries — a large win for the one-hot-encoded matrices the
//! GAN transformations produce.

use crate::pool;
use crate::tensor::Tensor;
use std::sync::OnceLock;

/// Records one kernel dispatch's work size (multiply-adds) into the
/// named histogram. Interned-handle lookup happens once; afterwards an
/// observation is a shift plus three relaxed atomic adds, and nothing
/// at all when telemetry is off.
pub(crate) fn observe_kernel_work(
    cell: &OnceLock<&'static daisy_telemetry::metrics::Histogram>,
    name: &'static str,
    work: usize,
) {
    if daisy_telemetry::enabled() {
        cell.get_or_init(|| daisy_telemetry::metrics::histogram(name))
            .observe(work as u64);
    }
}

static MATMUL_WORK: OnceLock<&'static daisy_telemetry::metrics::Histogram> = OnceLock::new();
static MATMUL_TN_WORK: OnceLock<&'static daisy_telemetry::metrics::Histogram> = OnceLock::new();
static MATMUL_NT_WORK: OnceLock<&'static daisy_telemetry::metrics::Histogram> = OnceLock::new();

/// Tile width over the shared `k` dimension for [`Tensor::matmul`].
/// Keeps the active panel of `b` (≈ `K_TILE × N` floats) inside L2 for
/// the matrix sizes the GAN models use. Tiling over `k` reorders only
/// *which rows of `b` stream when*, not the per-element addition order,
/// so it is bit-compatible with the untiled loop.
const K_TILE: usize = 128;

use pool::rows_per_block;

/// The i-k-j kernel for rows `r0..r0+rows` of the output, with `k`
/// tiling and the zero-skip. Per element, additions happen in ascending
/// `k` order regardless of tiling.
fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], r0: usize, k: usize, n: usize) {
    let rows = out.len() / n.max(1);
    for k0 in (0..k).step_by(K_TILE) {
        let k1 = (k0 + K_TILE).min(k);
        for i in 0..rows {
            let a_row = &a[(r0 + i) * k + k0..(r0 + i) * k + k1];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    }
}

impl Tensor {
    /// Matrix product of `[M, K] x [K, N] -> [M, N]`.
    ///
    /// Runs on the worker pool above [`pool::PAR_MIN_WORK`]
    /// multiply-adds; bit-identical to the serial loop at any thread
    /// count. Zero entries of `self` are skipped, which makes one-hot
    /// encoded inputs cheap.
    ///
    /// # Panics
    /// If either operand is not 2-D, or the inner dimensions differ
    /// (the message carries both shapes).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "matmul lhs must be 2-D, got {:?}",
            self.shape()
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul rhs must be 2-D, got {:?}",
            other.shape()
        );
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "matmul inner dimensions differ: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        observe_kernel_work(&MATMUL_WORK, "kernel.matmul.work", m * k * n);
        daisy_telemetry::phase_scope!("matmul");
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = other.data();
        let rpb = rows_per_block(m, m * k * n);
        pool::for_each_row_chunk(&mut out, n, rpb, |r0, chunk| {
            matmul_rows(a, b, chunk, r0, k, n);
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "transpose requires a 2-D tensor, got {:?}",
            self.shape()
        );
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// `self^T x other`, computed without materializing the transpose.
    /// Shapes: `[K, M]^T x [K, N] -> [M, N]`.
    ///
    /// Parallelized over output rows; per element the `k` additions stay
    /// in ascending order, so results match the serial loop bit-for-bit.
    ///
    /// # Panics
    /// If either operand is not 2-D, or the inner (shared `K`)
    /// dimensions differ (the message carries both shapes).
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "matmul_tn lhs must be 2-D, got {:?}",
            self.shape()
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul_tn rhs must be 2-D, got {:?}",
            other.shape()
        );
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "matmul_tn inner dimensions differ: {:?}^T x {:?}",
            self.shape(),
            other.shape()
        );
        observe_kernel_work(&MATMUL_TN_WORK, "kernel.matmul_tn.work", m * k * n);
        daisy_telemetry::phase_scope!("matmul_tn");
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = other.data();
        let rpb = rows_per_block(m, m * k * n);
        pool::for_each_row_chunk(&mut out, n, rpb, |i0, chunk| {
            let rows = chunk.len() / n.max(1);
            for kk in 0..k {
                let a_row = &a[kk * m..(kk + 1) * m];
                let b_row = &b[kk * n..(kk + 1) * n];
                for i in 0..rows {
                    let aki = a_row[i0 + i];
                    if aki == 0.0 {
                        continue;
                    }
                    let out_row = &mut chunk[i * n..(i + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aki * bv;
                    }
                }
            }
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// `self x other^T`, computed without materializing the transpose.
    /// Shapes: `[M, K] x [N, K]^T -> [M, N]`.
    ///
    /// Parallelized over output rows; each element is one dot product
    /// accumulated in ascending `k` order, identical to the serial loop.
    ///
    /// # Panics
    /// If either operand is not 2-D, or the inner (shared `K`)
    /// dimensions differ (the message carries both shapes).
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "matmul_nt lhs must be 2-D, got {:?}",
            self.shape()
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul_nt rhs must be 2-D, got {:?}",
            other.shape()
        );
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "matmul_nt inner dimensions differ: {:?} x {:?}^T",
            self.shape(),
            other.shape()
        );
        observe_kernel_work(&MATMUL_NT_WORK, "kernel.matmul_nt.work", m * k * n);
        daisy_telemetry::phase_scope!("matmul_nt");
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = other.data();
        let rpb = rows_per_block(m, m * k * n);
        pool::for_each_row_chunk(&mut out, n, rpb, |i0, chunk| {
            let rows = chunk.len() / n.max(1);
            for i in 0..rows {
                let a_row = &a[(i0 + i) * k..(i0 + i + 1) * k];
                let out_row = &mut chunk[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    *o = acc;
                }
            }
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Outer product of two 1-D tensors: `[M] ⊗ [N] -> [M, N]`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.ndim(),
            1,
            "outer lhs must be 1-D, got {:?}",
            self.shape()
        );
        assert_eq!(
            other.ndim(),
            1,
            "outer rhs must be 1-D, got {:?}",
            other.shape()
        );
        let (m, n) = (self.numel(), other.numel());
        let mut out = Vec::with_capacity(m * n);
        for &a in self.data() {
            for &b in other.data() {
                out.push(a * b);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from_u64(3);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at2_mut(i, i) = 1.0;
        }
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = Rng::seed_from_u64(4);
        let a = Tensor::randn(&[3, 5], &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), &[5, 3]);
        assert_eq!(a.transpose().at2(4, 2), a.at2(2, 4));
    }

    #[test]
    fn fused_transpose_matmuls_match_explicit() {
        let mut rng = Rng::seed_from_u64(5);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let b = Tensor::randn(&[6, 3], &mut rng);
        let explicit = a.transpose().matmul(&b);
        let fused = a.matmul_tn(&b);
        for (x, y) in explicit.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor::randn(&[5, 4], &mut rng);
        let d = Tensor::randn(&[7, 4], &mut rng);
        let explicit = c.matmul(&d.transpose());
        let fused = c.matmul_nt(&d);
        for (x, y) in explicit.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ: [2, 3] x [2, 3]")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_tn inner dimensions differ: [4, 2]^T x [3, 5]")]
    fn matmul_tn_dim_mismatch_panics() {
        let a = Tensor::zeros(&[4, 2]);
        let b = Tensor::zeros(&[3, 5]);
        let _ = a.matmul_tn(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_nt inner dimensions differ: [2, 4] x [5, 3]^T")]
    fn matmul_nt_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 4]);
        let b = Tensor::zeros(&[5, 3]);
        let _ = a.matmul_nt(&b);
    }

    /// Parallel blocked kernels must equal a plain serial reference
    /// bit-for-bit on awkward shapes (non-divisible tiles, 1×N, N×1).
    #[test]
    fn blocked_parallel_matches_serial_reference() {
        let _g = crate::pool::test_guard();
        fn reference(a: &Tensor, b: &Tensor) -> Tensor {
            let (m, k) = (a.rows(), a.cols());
            let n = b.cols();
            let mut out = vec![0.0f32; m * n];
            for i in 0..m {
                for kk in 0..k {
                    let aik = a.data()[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        out[i * n + j] += aik * b.data()[kk * n + j];
                    }
                }
            }
            Tensor::from_vec(out, &[m, n])
        }
        let mut rng = Rng::seed_from_u64(11);
        for &(m, k, n) in &[
            (1usize, 300usize, 7usize), // 1×N row vector, k > K_TILE
            (7, 300, 1),                // N×1 column output
            (65, 129, 33),              // nothing divides the tiles
            (130, 257, 66),
        ] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let want = reference(&a, &b);
            for threads in [1, 4] {
                crate::pool::set_threads(threads);
                assert_eq!(
                    a.matmul(&b).data(),
                    want.data(),
                    "m={m} k={k} n={n} threads={threads}"
                );
                // tn/nt checked against their own 1-thread runs below.
            }
            crate::pool::set_threads(1);
            let tn1 = a.transpose().matmul_tn(&b);
            let nt1 = a.matmul_nt(&b.transpose());
            crate::pool::set_threads(4);
            assert_eq!(a.transpose().matmul_tn(&b).data(), tn1.data());
            assert_eq!(a.matmul_nt(&b.transpose()).data(), nt1.data());
        }
        crate::pool::set_threads(4);
    }
}
