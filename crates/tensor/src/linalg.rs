//! Matrix multiplication and transposition kernels.
//!
//! The matmul uses the cache-friendly i-k-j loop order so the inner loop
//! streams both the output row and a row of `b`, which autovectorizes
//! well. At the matrix sizes used by the GAN models (≤ 1024 per side)
//! this is within a small factor of a tuned BLAS and keeps the crate
//! dependency-free.

use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product of `[M, K] x [K, N] -> [M, N]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k, k2,
            "matmul inner dimensions differ: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = other.data();
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            let a_row = &a[i * k..(i + 1) * k];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// `self^T x other`, computed without materializing the transpose.
    /// Shapes: `[K, M]^T x [K, N] -> [M, N]`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_tn lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_tn rhs must be 2-D");
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_tn shared dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = other.data();
        for kk in 0..k {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aki * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self x other^T`, computed without materializing the transpose.
    /// Shapes: `[M, K] x [N, K]^T -> [M, N]`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_nt lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_nt rhs must be 2-D");
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_nt shared dimension mismatch");
        let mut out = vec![0.0f32; m * n];
        let a = self.data();
        let b = other.data();
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Outer product of two 1-D tensors: `[M] ⊗ [N] -> [M, N]`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 1, "outer lhs must be 1-D");
        assert_eq!(other.ndim(), 1, "outer rhs must be 1-D");
        let (m, n) = (self.numel(), other.numel());
        let mut out = Vec::with_capacity(m * n);
        for &a in self.data() {
            for &b in other.data() {
                out.push(a * b);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from_u64(3);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at2_mut(i, i) = 1.0;
        }
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = Rng::seed_from_u64(4);
        let a = Tensor::randn(&[3, 5], &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), &[5, 3]);
        assert_eq!(a.transpose().at2(4, 2), a.at2(2, 4));
    }

    #[test]
    fn fused_transpose_matmuls_match_explicit() {
        let mut rng = Rng::seed_from_u64(5);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let b = Tensor::randn(&[6, 3], &mut rng);
        let explicit = a.transpose().matmul(&b);
        let fused = a.matmul_tn(&b);
        for (x, y) in explicit.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor::randn(&[5, 4], &mut rng);
        let d = Tensor::randn(&[7, 4], &mut rng);
        let explicit = c.matmul(&d.transpose());
        let fused = c.matmul_nt(&d);
        for (x, y) in explicit.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }
}
