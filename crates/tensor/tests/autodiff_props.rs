//! Property-based validation of the autodiff engine: for randomly
//! generated inputs and operator chains, analytic gradients must match
//! central finite differences.

use daisy_tensor::{Param, Rng, Tensor, Var};
use proptest::prelude::*;

/// Compares the analytic gradient of `f` at `x` against central finite
/// differences at every coordinate.
fn grad_matches_fd(x: Tensor, f: impl Fn(&Var) -> Var, tol: f32) -> Result<(), TestCaseError> {
    let param = Param::new(x.clone());
    f(&param.var()).backward();
    let analytic = param.grad();
    let eps = 1e-2f32;
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fp = f(&Var::constant(xp)).value().data()[0];
        let fm = f(&Var::constant(xm)).value().data()[0];
        let fd = (fp - fm) / (2.0 * eps);
        let a = analytic.data()[i];
        prop_assert!(
            (fd - a).abs() < tol.max(tol * fd.abs()),
            "grad[{}]: fd {} vs analytic {}",
            i,
            fd,
            a
        );
    }
    Ok(())
}

fn small_tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor::randn(&[rows, cols], &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Smooth activation chains: tanh ∘ affine, sigmoid ∘ affine.
    #[test]
    fn smooth_chains(seed in 0u64..10_000, rows in 1usize..4, cols in 1usize..5) {
        grad_matches_fd(
            small_tensor(seed, rows, cols),
            |x| x.mul_scalar(0.7).tanh().sigmoid().mean(),
            2e-2,
        )?;
    }

    /// Softmax composed with a weighted sum.
    #[test]
    fn softmax_weighted(seed in 0u64..10_000, rows in 1usize..4, cols in 2usize..5) {
        let w = small_tensor(seed ^ 1, rows, cols);
        grad_matches_fd(
            small_tensor(seed, rows, cols),
            move |x| x.softmax_rows().mul(&Var::constant(w.clone())).sum(),
            2e-2,
        )?;
    }

    /// Matmul against a random constant, squared and summed.
    #[test]
    fn matmul_quadratic(seed in 0u64..10_000, m in 1usize..4, k in 1usize..4, n in 1usize..4) {
        let b = small_tensor(seed ^ 2, k, n);
        grad_matches_fd(
            small_tensor(seed, m, k),
            move |x| x.matmul(&Var::constant(b.clone())).sqr().mean(),
            6e-2,
        )?;
    }

    /// Slicing, concatenation and row broadcasting together.
    #[test]
    fn shape_ops(seed in 0u64..10_000, rows in 1usize..4) {
        let row = small_tensor(seed ^ 3, 1, 2).reshape(&[2]);
        grad_matches_fd(
            small_tensor(seed, rows, 4),
            move |x| {
                let left = x.slice_cols(0, 2);
                let right = x.slice_cols(2, 4);
                Var::concat_cols(&[left.add_row(&Var::constant(row.clone())), right])
                    .sqr()
                    .mean()
            },
            5e-2,
        )?;
    }

    /// BCE-with-logits against random binary targets.
    #[test]
    fn bce_targets(seed in 0u64..10_000, rows in 1usize..4, cols in 1usize..4) {
        let mut rng = Rng::seed_from_u64(seed ^ 4);
        let target = Tensor::from_vec(
            (0..rows * cols).map(|_| f32::from(rng.bool(0.5) as u8)).collect(),
            &[rows, cols],
        );
        grad_matches_fd(
            small_tensor(seed, rows, cols),
            move |x| x.bce_with_logits(&target),
            2e-2,
        )?;
    }

    /// The gradient of a sum over concatenated duplicates doubles.
    #[test]
    fn reuse_doubles_gradient(seed in 0u64..10_000, rows in 1usize..4, cols in 1usize..4) {
        let x = small_tensor(seed, rows, cols);
        let p = Param::new(x.clone());
        let v = p.var();
        Var::concat_cols(&[v.clone(), v]).sum().backward();
        for &g in p.grad().data() {
            prop_assert!((g - 2.0).abs() < 1e-5);
        }
    }
}
