//! Property-style validation of the autodiff engine: for seeded random
//! inputs and operator chains, analytic gradients must match central
//! finite differences. (Hand-rolled case loops — the container builds
//! offline, so no proptest dependency.)

use daisy_tensor::{Param, Rng, Tensor, Var};

/// Compares the analytic gradient of `f` at `x` against central finite
/// differences at every coordinate.
fn grad_matches_fd(x: Tensor, f: impl Fn(&Var) -> Var, tol: f32) {
    let param = Param::new(x.clone());
    f(&param.var()).backward();
    let analytic = param.grad();
    let eps = 1e-2f32;
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fp = f(&Var::constant(xp)).value().data()[0];
        let fm = f(&Var::constant(xm)).value().data()[0];
        let fd = (fp - fm) / (2.0 * eps);
        let a = analytic.data()[i];
        assert!(
            (fd - a).abs() < tol.max(tol * fd.abs()),
            "grad[{i}]: fd {fd} vs analytic {a}"
        );
    }
}

fn small_tensor(seed: u64, rows: usize, cols: usize) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor::randn(&[rows, cols], &mut rng)
}

/// Deterministic stand-in for proptest's case generation: 24 seeded
/// shape/seed combinations per property.
fn cases(mut f: impl FnMut(u64, usize, usize)) {
    let mut rng = Rng::seed_from_u64(0xa11d1ff);
    for case in 0..24u64 {
        let rows = 1 + rng.usize(3);
        let cols = 1 + rng.usize(4);
        f(case.wrapping_mul(0x9e3779b97f4a7c15), rows, cols);
    }
}

/// Smooth activation chains: tanh ∘ affine, sigmoid ∘ affine.
#[test]
fn smooth_chains() {
    cases(|seed, rows, cols| {
        grad_matches_fd(
            small_tensor(seed, rows, cols),
            |x| x.mul_scalar(0.7).tanh().sigmoid().mean(),
            2e-2,
        );
    });
}

/// Softmax composed with a weighted sum.
#[test]
fn softmax_weighted() {
    cases(|seed, rows, cols| {
        let cols = cols.max(2);
        let w = small_tensor(seed ^ 1, rows, cols);
        grad_matches_fd(
            small_tensor(seed, rows, cols),
            move |x| x.softmax_rows().mul(&Var::constant(w.clone())).sum(),
            2e-2,
        );
    });
}

/// Matmul against a random constant, squared and summed.
#[test]
fn matmul_quadratic() {
    cases(|seed, m, k| {
        let n = 1 + (seed % 3) as usize;
        let b = small_tensor(seed ^ 2, k, n);
        grad_matches_fd(
            small_tensor(seed, m, k),
            move |x| x.matmul(&Var::constant(b.clone())).sqr().mean(),
            6e-2,
        );
    });
}

/// Slicing, concatenation and row broadcasting together.
#[test]
fn shape_ops() {
    cases(|seed, rows, _| {
        let row = small_tensor(seed ^ 3, 1, 2).reshape(&[2]);
        grad_matches_fd(
            small_tensor(seed, rows, 4),
            move |x| {
                let left = x.slice_cols(0, 2);
                let right = x.slice_cols(2, 4);
                Var::concat_cols(&[left.add_row(&Var::constant(row.clone())), right])
                    .sqr()
                    .mean()
            },
            5e-2,
        );
    });
}

/// BCE-with-logits against random binary targets.
#[test]
fn bce_targets() {
    cases(|seed, rows, cols| {
        let mut rng = Rng::seed_from_u64(seed ^ 4);
        let target = Tensor::from_vec(
            (0..rows * cols)
                .map(|_| f32::from(rng.bool(0.5) as u8))
                .collect(),
            &[rows, cols],
        );
        grad_matches_fd(
            small_tensor(seed, rows, cols),
            move |x| x.bce_with_logits(&target),
            2e-2,
        );
    });
}

/// The gradient of a sum over concatenated duplicates doubles.
#[test]
fn reuse_doubles_gradient() {
    cases(|seed, rows, cols| {
        let x = small_tensor(seed, rows, cols);
        let p = Param::new(x.clone());
        let v = p.var();
        Var::concat_cols(&[v.clone(), v]).sum().backward();
        for &g in p.grad().data() {
            assert!((g - 2.0).abs() < 1e-5);
        }
    });
}
