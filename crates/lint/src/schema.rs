//! Parses the workspace's invariant registries out of their source
//! modules: the telemetry event vocabulary and metric registry
//! (`crates/telemetry/src/schema.rs`) and the environment-knob
//! registry (`crates/telemetry/src/knobs.rs`). These are the sources
//! of truth the S-series and registry rules (M001, K001) check the
//! rest of the tree against.

use crate::lexer::{self, TokKind};
use std::collections::BTreeMap;

/// The parsed vocabulary: constant ident → event-name string, plus the
/// doc text attached to each constant.
#[derive(Debug, Default)]
pub struct EventSchema {
    /// `EPOCH` → `"epoch"`, in declaration order of the source.
    pub consts: BTreeMap<String, String>,
    /// Constant ident → concatenated doc-comment text.
    pub docs: BTreeMap<String, String>,
    /// Constant ident → 1-based declaration line.
    pub lines: BTreeMap<String, u32>,
    /// The profiler phase vocabulary (`PHASES`), in declaration order.
    pub phases: Vec<String>,
}

impl EventSchema {
    /// True when a literal event name is in the vocabulary.
    pub fn has_name(&self, name: &str) -> bool {
        self.consts.values().any(|v| v == name)
    }

    /// True when a `schema::IDENT` reference resolves.
    pub fn has_const(&self, ident: &str) -> bool {
        self.consts.contains_key(ident)
    }

    /// True when a literal phase name is in the `PHASES` vocabulary.
    pub fn has_phase(&self, name: &str) -> bool {
        self.phases.iter().any(|p| p == name)
    }
}

/// Parses `pub const IDENT: &str = "name";` declarations and their doc
/// comments from the schema module's source text.
pub fn parse(src: &str) -> EventSchema {
    let lexed = lexer::lex(src);
    let toks = &lexed.toks;
    let mut schema = EventSchema::default();
    let mut i = 0;
    while i + 7 < toks.len() {
        // pub const IDENT : & str = "value" ;
        if toks[i].is_ident("pub")
            && toks[i + 1].is_ident("const")
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].is_punct(':')
            && toks[i + 4].is_punct('&')
            && toks[i + 5].is_ident("str")
            && toks[i + 6].is_punct('=')
            && toks[i + 7].kind == TokKind::Str
        {
            let ident = toks[i + 2].text.clone();
            let value = toks[i + 7].text.clone();
            let decl_line = toks[i].line;
            // Doc comments: the contiguous run of comments directly
            // above the declaration line.
            let mut doc = String::new();
            let mut expect = decl_line;
            for c in lexed.comments.iter().rev() {
                if c.line >= decl_line {
                    continue;
                }
                if c.line + 1 == expect || c.line == expect {
                    doc.insert_str(0, &format!("{}\n", c.text));
                    expect = c.line;
                } else if c.line < expect {
                    break;
                }
            }
            schema.docs.insert(ident.clone(), doc);
            schema.lines.insert(ident.clone(), decl_line);
            schema.consts.insert(ident, value);
            i += 8;
        } else if toks[i].is_ident("pub")
            && toks[i + 1].is_ident("const")
            && toks[i + 2].is_ident("PHASES")
            && toks[i + 3].is_punct(':')
        {
            // pub const PHASES : & [ & str ] = & [ "a" , "b" , ... ] ;
            // Collect every string literal up to the closing `;`.
            let mut j = i + 4;
            while j < toks.len() && !toks[j].is_punct(';') {
                if toks[j].kind == TokKind::Str {
                    schema.phases.push(toks[j].text.clone());
                }
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    schema
}

/// The parsed metric registry (`telemetry::schema::METRICS`): metric
/// name → declared kind, plus declaration lines for anchoring
/// findings.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    /// Metric name → `counter` / `gauge` / `histogram`.
    pub kinds: BTreeMap<String, String>,
    /// Metric name → 1-based declaration line in the schema module.
    pub lines: BTreeMap<String, u32>,
}

impl MetricRegistry {
    /// The declared kind of `name`, if registered.
    pub fn kind(&self, name: &str) -> Option<&str> {
        self.kinds.get(name).map(String::as_str)
    }
}

/// Parses `("name", MetricKind::Kind)` entries out of the
/// `pub const METRICS: &[(&str, MetricKind)]` table in the telemetry
/// schema module's source text.
pub fn parse_metrics(src: &str) -> MetricRegistry {
    let lexed = lexer::lex(src);
    let toks = &lexed.toks;
    let mut reg = MetricRegistry::default();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("const") && i + 1 < toks.len() && toks[i + 1].is_ident("METRICS") {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(';') {
                // ( "name" , MetricKind :: Kind )
                if toks[j].kind == TokKind::Str
                    && j + 5 < toks.len()
                    && toks[j + 1].is_punct(',')
                    && toks[j + 2].is_ident("MetricKind")
                    && toks[j + 3].is_punct(':')
                    && toks[j + 4].is_punct(':')
                    && toks[j + 5].kind == TokKind::Ident
                {
                    let name = toks[j].text.clone();
                    reg.kinds.insert(name.clone(), toks[j + 5].text.to_lowercase());
                    reg.lines.insert(name, toks[j].line);
                    j += 6;
                } else {
                    j += 1;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    reg
}

/// The parsed knob registry (`telemetry::knobs::KNOBS`): registered
/// `DAISY_*` names and their declaration lines.
#[derive(Debug, Default)]
pub struct KnobRegistry {
    /// Knob name → 1-based declaration line in the knobs module.
    pub lines: BTreeMap<String, u32>,
}

impl KnobRegistry {
    /// True when `name` is a registered knob.
    pub fn has(&self, name: &str) -> bool {
        self.lines.contains_key(name)
    }
}

/// Parses `name: "DAISY_…"` struct fields out of the knob registry
/// module's source text.
pub fn parse_knobs(src: &str) -> KnobRegistry {
    let lexed = lexer::lex(src);
    let toks = &lexed.toks;
    let mut reg = KnobRegistry::default();
    for w in toks.windows(3) {
        if w[0].is_ident("name")
            && w[1].is_punct(':')
            && w[2].kind == TokKind::Str
            && w[2].text.starts_with("DAISY_")
        {
            reg.lines.insert(w[2].text.clone(), w[2].line);
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_consts_and_docs() {
        let src = "\
/// Training started. Fields: `algorithm`, `epochs`.
pub const TRAIN_START: &str = \"train_start\";

/// No fields doc here.
pub const ODD: &str = \"odd\";

/// Phase vocabulary.
pub const PHASES: &[&str] = &[\"fit\", \"epoch\"];
";
        let s = parse(src);
        assert_eq!(s.consts.len(), 2);
        assert!(s.has_name("train_start"));
        assert!(s.has_const("TRAIN_START"));
        assert!(!s.has_name("nope"));
        assert!(s.docs["TRAIN_START"].contains("Fields:"));
        assert!(!s.docs["ODD"].contains("Fields:"));
        assert_eq!(s.phases, vec!["fit", "epoch"]);
        assert!(s.has_phase("epoch"));
        assert!(!s.has_phase("nope"));
    }

    #[test]
    fn parses_the_live_schema() {
        let root = crate::workspace::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let src = std::fs::read_to_string(root.join("crates/telemetry/src/schema.rs"))
            .expect("schema module readable");
        let s = parse(&src);
        assert!(s.has_name("epoch"), "live schema should define `epoch`");
        assert!(s.has_const("GUARD_TRIP"));
        assert!(s.consts.len() >= 20, "vocabulary shrank? {:?}", s.consts);
        assert!(
            s.has_phase("serve_request"),
            "live schema should define the phase vocabulary: {:?}",
            s.phases
        );
    }

    #[test]
    fn parses_metric_registry_entries() {
        let src = r#"
pub enum MetricKind { Counter, Gauge, Histogram }
pub const METRICS: &[(&str, MetricKind)] = &[
    ("pool.jobs", MetricKind::Counter),
    ("train.grad_norm_g", MetricKind::Gauge),
    ("kernel.matmul.work", MetricKind::Histogram),
];
"#;
        let m = parse_metrics(src);
        assert_eq!(m.kind("pool.jobs"), Some("counter"));
        assert_eq!(m.kind("train.grad_norm_g"), Some("gauge"));
        assert_eq!(m.kind("kernel.matmul.work"), Some("histogram"));
        assert_eq!(m.kind("nope"), None);
        assert_eq!(m.lines["pool.jobs"], 4);
    }

    #[test]
    fn parses_knob_registry_entries() {
        let src = r#"
pub const KNOBS: &[Knob] = &[
    Knob { name: "DAISY_TRACE", default: "-", owner: "telemetry", doc: "x" },
    Knob { name: "DAISY_FULL", default: "0", owner: "bench", doc: "y" },
];
"#;
        let k = parse_knobs(src);
        assert!(k.has("DAISY_TRACE"));
        assert!(k.has("DAISY_FULL"));
        assert!(!k.has("DAISY_NOPE"));
    }

    #[test]
    fn parses_the_live_registries() {
        let root = crate::workspace::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let schema_src = std::fs::read_to_string(root.join("crates/telemetry/src/schema.rs"))
            .expect("schema module readable");
        let m = parse_metrics(&schema_src);
        assert!(m.kinds.len() >= 20, "metric registry shrank? {:?}", m.kinds);
        assert_eq!(m.kind("pool.jobs"), Some("counter"));
        assert_eq!(m.kind("serve.request_us"), Some("histogram"));
        let knobs_src = std::fs::read_to_string(root.join(crate::symbols::KNOBS_REL))
            .expect("knobs module readable");
        let k = parse_knobs(&knobs_src);
        assert!(k.lines.len() >= 15, "knob registry shrank? {:?}", k.lines);
        assert!(k.has("DAISY_TRACE"));
        assert!(k.has("DAISY_FULL"));
    }
}
