//! The command-line front end shared by the `daisy-lint` binary and
//! the `daisy lint` subcommand.

use crate::findings::{render_human, render_json, render_sarif, RULES};
use std::path::PathBuf;

const HELP: &str = "\
daisy-lint — determinism & invariant linter for the daisy workspace

USAGE:
    daisy-lint [--root DIR] [--format human|json|sarif] [--list-rules]
    daisy lint [--root DIR] [--format human|json|sarif] [--list-rules]

OPTIONS:
    --root DIR     workspace root (default: walk up from the current
                   directory to the nearest [workspace] Cargo.toml)
    --format FMT   output format: human (default), json, or sarif
                   (SARIF 2.1.0, for CI code-scanning upload)
    --json         shorthand for --format json
    --list-rules   print the rule catalogue and exit

EXIT CODE:
    0  clean          1  findings          2  usage or I/O error

Suppress an intentional violation with a comment on (or directly
above) the offending line:

    // daisy-lint: allow(D002) — bench wall timing feeds the nd plane

See docs/LINTS.md for the rule catalogue.
";

/// Output format selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

/// Runs the linter CLI. Prints to stdout/stderr; returns the process
/// exit code (0 clean, 1 findings, 2 usage or I/O error). Findings
/// exit 1 in every format — SARIF output still gates CI.
pub fn cli(args: &[String]) -> i32 {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match iter.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    eprintln!("error: unknown format {other:?} (human, json, sarif)");
                    return 2;
                }
                None => {
                    eprintln!("error: --format requires a format name (human, json, sarif)");
                    return 2;
                }
            },
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory");
                    return 2;
                }
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{:<6} {:<8} {}", r.id, r.severity.to_string(), r.summary);
                }
                return 0;
            }
            "--help" | "-h" => {
                println!("{HELP}");
                return 0;
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!("{HELP}");
                return 2;
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot read the current directory: {e}");
                    return 2;
                }
            };
            match crate::workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no [workspace] Cargo.toml above {}; pass --root",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };
    if !root.join("Cargo.toml").is_file() {
        eprintln!("error: {} is not a workspace root (no Cargo.toml)", root.display());
        return 2;
    }
    let report = match crate::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot lint {}: {e}", root.display());
            return 2;
        }
    };
    match format {
        Format::Json => println!("{}", render_json(&report.findings, report.files_scanned)),
        Format::Sarif => println!("{}", render_sarif(&report.findings, report.files_scanned)),
        Format::Human => print!("{}", render_human(&report.findings, report.files_scanned)),
    }
    // Both severities gate: a warning is still a finding.
    if report.is_clean() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_rules_and_help_exit_zero() {
        assert_eq!(cli(&["--list-rules".into()]), 0);
        assert_eq!(cli(&["--help".into()]), 0);
    }

    #[test]
    fn unknown_flag_is_usage_error() {
        assert_eq!(cli(&["--frobnicate".into()]), 2);
        assert_eq!(cli(&["--root".into()]), 2);
        assert_eq!(cli(&["--format".into()]), 2);
        assert_eq!(cli(&["--format".into(), "xml".into()]), 2);
    }

    #[test]
    fn missing_root_is_an_io_error() {
        assert_eq!(
            cli(&["--root".into(), "/nonexistent/daisy".into(), "--json".into()]),
            2
        );
    }
}
