//! Findings, rule metadata, and the human / JSON renderers.

use std::fmt;

/// How serious a finding is. Both severities gate CI — the split exists
/// so the catalogue can communicate intent (an `Error` is a contract
/// violation, a `Warning` is a convention drift).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violates a workspace contract (determinism, schema, safety).
    Error,
    /// Violates a convention (hygiene budgets, message style).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// Static description of one rule, as listed by `--list-rules` and
/// documented in `docs/LINTS.md`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id (`D001`, `S002`, ...), used in suppressions.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// True when `// daisy-lint: allow(<id>)` anywhere in the file
    /// suppresses the rule for the whole file (used by rules whose
    /// findings have no meaningful single line, e.g. missing crate
    /// attributes or per-crate budgets).
    pub file_scoped: bool,
}

/// The rule catalogue. Order is the presentation order everywhere.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        severity: Severity::Error,
        summary: "no HashMap/HashSet iteration in deterministic code (hash-seed-ordered); \
                  use BTreeMap/BTreeSet or sort first",
        file_scoped: false,
    },
    RuleInfo {
        id: "D002",
        severity: Severity::Error,
        summary: "no Instant::now/SystemTime/std::time outside telemetry's nd-marked plane",
        file_scoped: false,
    },
    RuleInfo {
        id: "D003",
        severity: Severity::Error,
        summary: "no thread spawning outside tensor::pool (the one sanctioned worker pool)",
        file_scoped: false,
    },
    RuleInfo {
        id: "D004",
        severity: Severity::Error,
        summary: "no entropy-seeded RNG or randomized-hasher construction outside tensor::rng",
        file_scoped: false,
    },
    RuleInfo {
        id: "S001",
        severity: Severity::Error,
        summary: "telemetry event names must come from telemetry::schema (literal or schema:: \
                  constant found in the vocabulary)",
        file_scoped: false,
    },
    RuleInfo {
        id: "S002",
        severity: Severity::Error,
        summary: "every telemetry::schema constant must document its `Fields:` contract",
        file_scoped: false,
    },
    RuleInfo {
        id: "S003",
        severity: Severity::Error,
        summary: "deterministic-plane events carry logical time only; wall-clock field names \
                  (ms/wall/elapsed/...) are reserved for telemetry's nd plane",
        file_scoped: false,
    },
    RuleInfo {
        id: "S004",
        severity: Severity::Error,
        summary: "profiler phase names must come from telemetry::schema::PHASES so traces, \
                  /metrics labels, and `daisy top` agree on one vocabulary",
        file_scoped: false,
    },
    RuleInfo {
        id: "H001",
        severity: Severity::Error,
        summary: "crate roots must carry #![forbid(unsafe_code)]",
        file_scoped: true,
    },
    RuleInfo {
        id: "H002",
        severity: Severity::Error,
        summary: "crate roots must carry #![warn(missing_docs)]",
        file_scoped: true,
    },
    RuleInfo {
        id: "H003",
        severity: Severity::Warning,
        summary: "per-crate unwrap()/expect() budget (counted baseline; new ones must be \
                  handled or the baseline consciously raised)",
        file_scoped: true,
    },
    RuleInfo {
        id: "H004",
        severity: Severity::Warning,
        summary: "tensor kernel assertions must carry dimension-bearing panic messages",
        file_scoped: false,
    },
    RuleInfo {
        id: "M001",
        severity: Severity::Error,
        summary: "metrics must be registered in telemetry::schema::METRICS with a fixed kind, \
                  emitted somewhere, and documented in docs/OBSERVABILITY.md",
        file_scoped: false,
    },
    RuleInfo {
        id: "K001",
        severity: Severity::Error,
        summary: "DAISY_* environment reads must go through telemetry::knobs; every mentioned \
                  knob must be registered and documented in docs/OBSERVABILITY.md",
        file_scoped: false,
    },
    RuleInfo {
        id: "W001",
        severity: Severity::Error,
        summary: "wire magics are declared exactly once, in daisy_wire::magic; no duplicate or \
                  inlined magic values elsewhere",
        file_scoped: false,
    },
];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One lint finding, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (always one of [`RULES`]).
    pub rule: &'static str,
    /// Severity inherited from the rule.
    pub severity: Severity,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human message with the specifics.
    pub message: String,
}

impl Finding {
    /// Builds a finding, pulling severity from the catalogue.
    pub fn new(rule_id: &'static str, file: &str, line: u32, message: String) -> Finding {
        let info = rule(rule_id).unwrap_or_else(|| panic!("unknown rule id {rule_id}"));
        Finding {
            rule: rule_id,
            severity: info.severity,
            file: file.to_string(),
            line,
            message,
        }
    }
}

/// Renders findings for humans, one block per finding plus a summary
/// line. Deterministic: the caller sorts findings first.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}[{}]: {}\n  --> {}:{}\n",
            f.severity, f.rule, f.message, f.file, f.line
        ));
    }
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    out.push_str(&format!(
        "daisy-lint: {files_scanned} files scanned, {errors} errors, {warnings} warnings\n"
    ));
    out
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a single machine-readable JSON object:
///
/// ```json
/// {"tool":"daisy-lint","version":1,
///  "summary":{"files":N,"errors":E,"warnings":W},
///  "findings":[{"rule":"D001","severity":"error","file":"...","line":1,
///               "message":"..."}]}
/// ```
///
/// Output is deterministic (sorted findings, fixed key order) so CI
/// artifacts diff cleanly between runs.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    let mut out = String::from("{\"tool\":\"daisy-lint\",\"version\":1,");
    out.push_str(&format!(
        "\"summary\":{{\"files\":{files_scanned},\"errors\":{errors},\"warnings\":{warnings}}},"
    ));
    out.push_str("\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule,
            f.severity,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

/// Renders findings as a SARIF 2.1.0 log with one run, so CI can
/// upload the output for inline code-scanning annotations. The shape
/// is minimal but valid: `runs[0].tool.driver` names the tool and
/// carries the full rule catalogue; each result holds `ruleId`,
/// `level`, `message.text`, and one physical location
/// (`artifactLocation.uri` + `region.startLine`). Deterministic for
/// the same reasons as [`render_json`].
pub fn render_sarif(findings: &[Finding], _files_scanned: usize) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"daisy-lint\",\"informationUri\":\"docs/LINTS.md\",\"rules\":[",
    );
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            r.id,
            json_escape(r.summary)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            f.rule,
            json_escape(&f.message),
            json_escape(&f.file),
            f.line.max(1)
        ));
    }
    out.push_str("]}]}");
    out
}

/// Sorts findings into the canonical presentation order:
/// file, then line, then rule id.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_resolvable() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(rule(r.id).is_some());
            for other in &RULES[i + 1..] {
                assert_ne!(r.id, other.id);
            }
        }
    }

    #[test]
    fn json_escapes_and_counts() {
        let findings = vec![Finding::new(
            "D001",
            "crates/x/src/lib.rs",
            3,
            "say \"no\"\nplease".to_string(),
        )];
        let json = render_json(&findings, 7);
        assert!(json.contains("\\\"no\\\"\\nplease"));
        assert!(json.contains("\"summary\":{\"files\":7,\"errors\":1,\"warnings\":0}"));
    }

    #[test]
    fn sort_is_by_file_line_rule() {
        let mut f = vec![
            Finding::new("H004", "b.rs", 2, String::new()),
            Finding::new("D001", "b.rs", 2, String::new()),
            Finding::new("D002", "a.rs", 9, String::new()),
        ];
        sort(&mut f);
        let order: Vec<_> = f.iter().map(|x| (x.file.as_str(), x.line, x.rule)).collect();
        assert_eq!(order, vec![("a.rs", 9, "D002"), ("b.rs", 2, "D001"), ("b.rs", 2, "H004")]);
    }
}
