//! A minimal, hand-rolled Rust lexer — just enough fidelity for lint
//! rules: identifiers, punctuation, string/char literals, numbers and
//! lifetimes come out as tokens; comments (line, doc, nested block) are
//! collected separately so suppression directives can be read from them
//! without ever confusing a `HashMap` inside a doc comment or a string
//! literal with real code.
//!
//! The lexer is intentionally *not* a full Rust grammar: rules operate
//! on token shapes (`ident . ident (`), never on parse trees. That
//! keeps the crate dependency-free (no `syn`, no `regex`) and fast
//! enough to lex the whole workspace in a test.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `spawn`, ...).
    Ident,
    /// String literal (`"..."`, raw and byte variants); `text` is the
    /// *contents* without quotes, escapes left as written.
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'static`), without the leading quote.
    Lifetime,
    /// Single punctuation character (`.`, `:`, `(`, `!`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for conventions).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True when this token is exactly the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A comment with the 1-based line it starts on. Doc comments are
/// included; block comments keep their full text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Never fails: unterminated constructs simply run
/// to end of input (the compiler, not the linter, owns error quality).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    // Counts newlines in b[from..to] into `line`.
    fn advance_lines(b: &[char], from: usize, to: usize, line: &mut u32) {
        for c in &b[from..to] {
            if *c == '\n' {
                *line += 1;
            }
        }
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (incl. /// and //!).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: start_line,
                text: b[start..end].iter().collect(),
            });
            i = j;
            continue;
        }
        // Raw / byte string prefixes: r", r#", br", b" (and rb is not
        // a Rust prefix, so it is not handled).
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, is_raw) = raw_string_prefix(&b[i..]);
            if prefix_len > 0 {
                let start_line = line;
                let mut j = i + prefix_len; // positioned after opening quote
                let hashes = b[i..i + prefix_len].iter().filter(|&&x| x == '#').count();
                let content_start = j;
                if is_raw {
                    // Scan for `"` followed by `hashes` #s.
                    'outer: while j < n {
                        if b[j] == '"' {
                            let mut k = 1;
                            while k <= hashes {
                                if j + k >= n || b[j + k] != '#' {
                                    break;
                                }
                                k += 1;
                            }
                            if k == hashes + 1 {
                                break 'outer;
                            }
                        }
                        if b[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: b[content_start..j.min(n)].iter().collect(),
                        line: start_line,
                    });
                    i = (j + 1 + hashes).min(n);
                } else {
                    // b"..." — ordinary escapes.
                    let (text, end) = scan_quoted(&b, j, &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line: start_line,
                    });
                    i = end;
                }
                continue;
            }
        }
        // String literal.
        if c == '"' {
            let start_line = line;
            let (text, end) = scan_quoted(&b, i + 1, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote right after.
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < n && b[i + 2] == '\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i + 1..j].iter().collect(),
                    line,
                });
                i = j;
            } else {
                // Char literal: handle '\'' and '\\'.
                let mut j = i + 1;
                while j < n {
                    if b[j] == '\\' {
                        j += 2;
                        continue;
                    }
                    if b[j] == '\'' {
                        j += 1;
                        break;
                    }
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[i + 1..j.saturating_sub(1).max(i + 1)].iter().collect(),
                    line,
                });
                i = j;
            }
            continue;
        }
        // Identifier (incl. raw idents r#ident).
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            // r#ident: the `r` branch above only fires for string
            // prefixes, so `r#for` arrives here as `r` — stitch it.
            if j == i + 1 && (b[i] == 'r') && j < n && b[j] == '#' {
                let mut k = j + 1;
                while k < n && (b[k].is_alphanumeric() || b[k] == '_') {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[j + 1..k].iter().collect(),
                    line,
                });
                i = k;
                continue;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            // Fractional part — but not the `..` range operator.
            if j < n && b[j] == '.' && j + 1 < n && b[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Single punctuation char.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        advance_lines(&b, i, i + 1, &mut line);
        i += 1;
    }
    out
}

/// Length of a raw/byte string prefix at `b[0..]` *including* the
/// opening quote, and whether it is raw (no escapes). 0 when `b` does
/// not start a string prefix.
fn raw_string_prefix(b: &[char]) -> (usize, bool) {
    let mut i = 0;
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if i < b.len() && b[i] == 'r' {
        raw = true;
        i += 1;
    }
    if !raw && i == 0 {
        return (0, false);
    }
    let mut hashes = 0;
    while raw && i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == '"' {
        if raw || hashes == 0 {
            (i + 1, raw)
        } else {
            (0, false)
        }
    } else {
        (0, false)
    }
}

/// Scans an escaped string body starting *after* the opening quote;
/// returns (contents, index after closing quote).
fn scan_quoted(b: &[char], start: usize, line: &mut u32) -> (String, usize) {
    let n = b.len();
    let mut j = start;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '"' => break,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    let text: String = b[start..j.min(n)].iter().collect();
    (text, (j + 1).min(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_tokenized() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in a block /* nested */ comment */
            let s = "HashMap::new()";
            let r = r#"SystemTime"#;
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|s| s.as_str() == "HashMap").count(),
            1,
            "only the real HashMap should tokenize: {ids:?}"
        );
        assert!(!ids.iter().any(|s| s == "Instant" || s == "SystemTime"));
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "let a = 1;\n// daisy-lint: allow(D001)\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow(D001)"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn multiline_strings_track_lines() {
        let src = "let a = \"first\nsecond\";\nlet b = 1;";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn range_does_not_merge_into_number() {
        let lexed = lex("for i in 0..10 {}");
        let nums: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let lexed = lex(r#"let s = "a \" HashMap"; let t = 1;"#);
        assert!(lexed.toks.iter().any(|t| t.is_ident("t")));
        assert!(!lexed.toks.iter().any(|t| t.is_ident("HashMap")));
    }
}
