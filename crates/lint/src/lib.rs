//! # daisy-lint
//!
//! A zero-dependency static-analysis pass over the workspace's own
//! Rust sources, promoting the determinism contract (bit-exact results
//! and trace bytes at any thread count — see `DESIGN.md` §2b/§6d) from
//! test-time luck to a build-time gate.
//!
//! The linter lexes every workspace `.rs` file with a small hand-rolled
//! comment/string-aware lexer (no `syn`, no `regex` — consistent with
//! the repo's no-external-deps discipline), builds a workspace-wide
//! symbol table (pass 1, [`symbols`]), then checks four rule families
//! against the token streams and the table (pass 2):
//!
//! * **D-series (determinism)**: no hash-ordered iteration, wall-clock
//!   reads, rogue thread spawns, or entropy-seeded RNG construction in
//!   deterministic code.
//! * **S-series (schema)**: telemetry event names must exist in
//!   `telemetry::schema`, every schema constant must document its
//!   `Fields:` contract, and deterministic-plane events carry logical
//!   time only.
//! * **H-series (hygiene)**: crate-root `#![forbid(unsafe_code)]` +
//!   `#![warn(missing_docs)]`, per-crate unwrap/expect budgets, and
//!   dimension-carrying kernel panic messages.
//! * **Registry rules (M001/K001/W001)**: the whole tree checked
//!   against the invariant registries — the metric registry
//!   (`telemetry::schema::METRICS`), the environment-knob registry
//!   (`telemetry::knobs`, dumped by `daisy knobs`), and the wire-magic
//!   registry (`daisy_wire::magic`) — each kept in three-way sync
//!   between code, registry, and `docs/OBSERVABILITY.md`.
//!
//! Run it as `cargo run -p daisy-lint` or `daisy lint`; add
//! `--format json` for machine-readable findings or `--format sarif`
//! for a SARIF 2.1.0 log CI uploads to code scanning. Suppress an
//! intentional violation with a `// daisy-lint: allow(<RULE>)` comment
//! on (or directly above) the offending line. The full catalogue
//! lives in `docs/LINTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod schema;
pub mod symbols;
pub mod workspace;

pub use findings::{render_human, render_json, render_sarif, Finding, RuleInfo, Severity, RULES};
pub use rules::{lint_files, LintContext, LintReport};

use std::io;
use std::path::Path;

/// Path of the event vocabulary inside a workspace.
pub const SCHEMA_REL: &str = "crates/telemetry/src/schema.rs";

/// Lints the workspace rooted at `root`: collects every covered `.rs`
/// file, parses the invariant registries (event vocabulary, metric
/// registry, knob registry) plus `docs/OBSERVABILITY.md`, and runs all
/// rules.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = workspace::collect(root)?;
    let schema_src = files.iter().find(|f| f.rel == SCHEMA_REL).map(|f| f.src.as_str());
    let knobs_src = files
        .iter()
        .find(|f| f.rel == symbols::KNOBS_REL)
        .map(|f| f.src.as_str());
    let ctx = LintContext {
        events: schema_src.map(schema::parse).unwrap_or_default(),
        metrics: schema_src.map(schema::parse_metrics).unwrap_or_default(),
        knobs: knobs_src.map(schema::parse_knobs).unwrap_or_default(),
        docs: std::fs::read_to_string(root.join("docs/OBSERVABILITY.md")).unwrap_or_default(),
    };
    Ok(rules::lint_files(&files, &ctx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_rel_matches_the_live_workspace() {
        let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        assert!(root.join(SCHEMA_REL).is_file());
    }
}
