//! The rule implementations.
//!
//! Three families, mirroring `docs/LINTS.md`:
//!
//! * **D — determinism**: the bit-exact-at-any-thread-count contract
//!   (PR 2–4) must not be eroded by hash-ordered iteration, wall-clock
//!   reads, rogue threads, or entropy-seeded RNGs.
//! * **S — schema**: telemetry emitters and the event vocabulary in
//!   `telemetry::schema` must not drift apart.
//! * **H — hygiene**: crate-root attributes, unwrap/expect budgets,
//!   dimension-carrying kernel panics.
//!
//! Every rule is lexical (token shapes over the [`crate::lexer`]
//! stream), which buys zero dependencies at the price of known
//! heuristics; the catalogue documents each rule's blind spots.

use crate::findings::{rule, Finding};
use crate::lexer::{self, Lexed, Tok, TokKind};
use crate::schema::{EventSchema, KnobRegistry, MetricRegistry};
use crate::symbols::{self, SymbolTable};
use crate::workspace::{FileKind, SourceFile, Suppressions};
use std::collections::{BTreeMap, BTreeSet};

/// Per-crate unwrap()/expect() budgets for H003, counted over non-test
/// `src/` code. This is a **ratchet baseline**: lowering a number is
/// always welcome; raising one is a conscious, reviewed decision.
pub const UNWRAP_BUDGETS: &[(&str, usize)] = &[
    ("baselines", 2),
    ("bench", 1),
    ("core", 14),
    ("daisy", 0),
    ("data", 3),
    ("datasets", 0),
    ("eval", 10),
    ("lint", 0),
    ("nn", 1),
    ("serve", 0),
    ("telemetry", 10),
    ("tensor", 9),
    ("wire", 4),
];

/// Files exempt from D002: the telemetry crate is the workspace's one
/// sanctioned wall-clock plane (its events mark themselves `nd`).
const TIME_EXEMPT_PREFIX: &str = "crates/telemetry/";
/// The one file allowed to spawn threads (D003).
const POOL_FILE: &str = "crates/tensor/src/pool.rs";
/// The one file allowed to construct entropy/hasher randomness (D004).
const RNG_FILE: &str = "crates/tensor/src/rng.rs";
/// Kernel files whose assertions must carry dimensions (H004).
const KERNEL_FILES: &[&str] = &["crates/tensor/src/linalg.rs", "crates/tensor/src/conv.rs"];

/// Map/set methods whose iteration order is hash-seed-dependent.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Field names that denote wall-clock measurements (S003).
const WALL_FIELDS: &[&str] = &[
    "ms",
    "wall",
    "wall_ms",
    "elapsed",
    "elapsed_ms",
    "duration",
    "duration_ms",
    "nanos",
    "micros",
    "secs",
    "seconds",
];

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Everything pass 2 checks the tree against: the parsed invariant
/// registries plus the documentation text their entries must appear
/// in. [`crate::lint_workspace`] assembles this from the live
/// workspace; fixture tests construct it directly.
#[derive(Debug, Default)]
pub struct LintContext {
    /// The telemetry event vocabulary (S001–S004).
    pub events: EventSchema,
    /// The metric registry (M001).
    pub metrics: MetricRegistry,
    /// The environment-knob registry (K001).
    pub knobs: KnobRegistry,
    /// `docs/OBSERVABILITY.md` text; M001/K001 require every
    /// registered metric and knob name to appear in it.
    pub docs: String,
}

/// Lints a set of in-memory source files against the workspace
/// registries. This is the engine behind [`crate::lint_workspace`];
/// tests call it directly with fixture files.
///
/// Two passes: pass 1 lexes every file and builds the workspace
/// [`SymbolTable`]; pass 2 runs the per-file rules (with cross-crate
/// name resolution through the table) and then the workspace-level
/// registry rules M001 / K001 / W001.
pub fn lint_files(files: &[SourceFile], ctx: &LintContext) -> LintReport {
    let mut all: Vec<Finding> = Vec::new();
    let mut lexed_files: Vec<(usize, Lexed, Suppressions, u32)> = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        let lexed = lexer::lex(&file.src);
        let suppressions = Suppressions::parse(&lexed.comments);
        let cut = test_cut_line(&lexed.toks);
        lexed_files.push((idx, lexed, suppressions, cut));
    }

    // Pass 1: the workspace symbol table.
    let views: Vec<(&SourceFile, &[Tok], u32)> = lexed_files
        .iter()
        .map(|(idx, lexed, _, cut)| (&files[*idx], lexed.toks.as_slice(), *cut))
        .collect();
    let table = symbols::build(&views);

    // Pass 2: per-file rules.
    for (idx, lexed, _, cut) in &lexed_files {
        let file = &files[*idx];
        check_d001_hash_iteration(file, lexed, &mut all);
        check_d002_wall_clock(file, lexed, &mut all);
        check_d003_thread_spawn(file, lexed, &mut all);
        check_d004_rng_construction(file, lexed, &mut all);
        if file.kind == FileKind::Src && !file.rel.starts_with(TIME_EXEMPT_PREFIX) {
            check_s001_s003_event_calls(file, lexed, *cut, &ctx.events, &table, &mut all);
            check_s004_phase_literals(file, lexed, *cut, &ctx.events, &table, &mut all);
        }
        if file.rel == "crates/telemetry/src/schema.rs" {
            check_s002_schema_docs(file, &mut all);
        }
        if file.is_crate_root() {
            check_h001_h002_root_attrs(file, lexed, &mut all);
        }
        if KERNEL_FILES.contains(&file.rel.as_str()) {
            check_h004_kernel_panics(file, lexed, *cut, &mut all);
        }
    }

    check_h003_unwrap_budget(files, &lexed_files, &mut all);

    // Pass 2, workspace-level: the registry rules.
    check_m001_metric_registry(ctx, &table, &mut all);
    check_k001_knob_registry(ctx, &table, &mut all);
    check_w001_wire_magics(&table, &mut all);

    // Apply suppressions, dedupe (several patterns can fire on one
    // line, e.g. `use std::time::Instant`), and sort.
    let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    let mut kept = Vec::new();
    for f in all {
        let file_scoped = rule(f.rule).is_some_and(|r| r.file_scoped);
        let suppressed = lexed_files.iter().any(|(idx, _, sup, _)| {
            files[*idx].rel == f.file && sup.allows(f.rule, f.line, file_scoped)
        });
        if suppressed {
            continue;
        }
        if seen.insert((f.file.clone(), f.line, f.rule)) {
            kept.push(f);
        }
    }
    crate::findings::sort(&mut kept);
    LintReport {
        findings: kept,
        files_scanned: files.len(),
    }
}

/// Line of the first `#[cfg(test)]` attribute, or `u32::MAX` when the
/// file has none. By workspace convention test modules close out a
/// file, so "every line at or after the first `#[cfg(test)]`" is the
/// test region for the rules that exempt tests (S001, H003).
pub(crate) fn test_cut_line(toks: &[Tok]) -> u32 {
    for w in toks.windows(7) {
        if w[0].is_punct('#')
            && w[1].is_punct('[')
            && w[2].is_ident("cfg")
            && w[3].is_punct('(')
            && w[4].is_ident("test")
            && w[5].is_punct(')')
            && w[6].is_punct(']')
        {
            return w[0].line;
        }
    }
    u32::MAX
}

// ----- D001: HashMap/HashSet iteration -----

fn check_d001_hash_iteration(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    // Pass 1: names bound to hash-ordered collections, via type
    // annotations (`name: HashMap<..>`, incl. `std::collections::`
    // paths and struct fields) and constructor bindings
    // (`let name = HashMap::new()`).
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over path segments / references to the annotation.
        let mut j = i;
        while j > 0 {
            let prev = &toks[j - 1];
            if prev.is_punct(':')
                || prev.is_punct('&')
                || prev.is_ident("std")
                || prev.is_ident("collections")
                || prev.is_ident("mut")
                || prev.kind == TokKind::Lifetime
            {
                j -= 1;
            } else {
                break;
            }
        }
        let crossed_colon = j < i && toks[j..i].iter().any(|t| t.is_punct(':'));
        if crossed_colon && j > 0 && toks[j - 1].kind == TokKind::Ident {
            hash_names.insert(toks[j - 1].text.clone());
        }
        // `name = HashMap::new(...)` / `HashSet::with_capacity(...)`.
        if i >= 2 && toks[i - 1].is_punct('=') && toks[i - 2].kind == TokKind::Ident {
            hash_names.insert(toks[i - 2].text.clone());
        }
    }
    if hash_names.is_empty() {
        return;
    }
    // Pass 2: flag hash-ordered iteration over tracked names.
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !hash_names.contains(&toks[i].text) {
            continue;
        }
        // name.iter() / .keys() / ... — anything order-dependent.
        if i + 3 < toks.len()
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is_punct('(')
        {
            out.push(Finding::new(
                "D001",
                &file.rel,
                toks[i + 2].line,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet in hash-seed order; use \
                     BTreeMap/BTreeSet or collect-and-sort before iterating",
                    toks[i].text, toks[i + 2].text
                ),
            ));
        }
        // for pat in [&[mut]] name { ... }
        if i + 1 < toks.len() && toks[i + 1].is_punct('{') {
            let mut j = i;
            while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
                j -= 1;
            }
            if j > 0 && toks[j - 1].is_ident("in") {
                out.push(Finding::new(
                    "D001",
                    &file.rel,
                    toks[i].line,
                    format!(
                        "`for .. in {}` iterates a HashMap/HashSet in hash-seed order; use \
                         BTreeMap/BTreeSet or collect-and-sort before iterating",
                        toks[i].text
                    ),
                ));
            }
        }
    }
}

// ----- D002: wall-clock reads -----

fn check_d002_wall_clock(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    if file.rel.starts_with(TIME_EXEMPT_PREFIX) {
        return;
    }
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        let flagged = if toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime") {
            Some(toks[i].text.as_str())
        } else if toks[i].is_ident("std")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("time")
        {
            Some("std::time")
        } else {
            None
        };
        if let Some(what) = flagged {
            out.push(Finding::new(
                "D002",
                &file.rel,
                toks[i].line,
                format!(
                    "`{what}` reads the wall clock in deterministic code; wall time may only \
                     enter telemetry's nd-marked plane (crates/telemetry)"
                ),
            ));
        }
    }
}

// ----- D003: thread spawning -----

fn check_d003_thread_spawn(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    if file.rel == POOL_FILE {
        return;
    }
    let toks = &lexed.toks;
    for i in 1..toks.len() {
        if toks[i].is_ident("spawn")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
            && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'))
        {
            out.push(Finding::new(
                "D003",
                &file.rel,
                toks[i].line,
                "thread spawning outside tensor::pool breaks the deterministic scheduling \
                 contract; dispatch work through the worker pool instead"
                    .to_string(),
            ));
        }
    }
}

// ----- D004: RNG construction -----

fn check_d004_rng_construction(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    if file.rel == RNG_FILE {
        return;
    }
    const BANNED: &[&str] = &[
        "RandomState",
        "DefaultHasher",
        "thread_rng",
        "from_entropy",
        "getrandom",
    ];
    for t in &lexed.toks {
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            out.push(Finding::new(
                "D004",
                &file.rel,
                t.line,
                format!(
                    "`{}` constructs nondeterministic randomness; all RNG streams must come \
                     from tensor::rng's seeded generator",
                    t.text
                ),
            ));
        }
    }
}

// ----- S001 / S003: event emission call sites -----

/// Finds `emit(...)`, `span_start(...)`, and `Event::new(...)` calls;
/// checks the event-name argument against the vocabulary (S001) and
/// field-name literals against the wall-clock blocklist (S003). Both
/// rules skip the file's test region.
///
/// The name argument resolves in three steps: a string literal checks
/// directly; a `schema::IDENT` path checks the vocabulary's constant
/// names; any other SCREAMING_CASE identifier (bare or path-final,
/// e.g. `tschema::INGEST_START` in another crate) resolves through
/// the vocabulary first and then the workspace symbol table — the
/// cross-crate upgrade. An identifier bound to more than one value
/// across the workspace is ambiguous and skipped (documented blind
/// spot).
fn check_s001_s003_event_calls(
    file: &SourceFile,
    lexed: &Lexed,
    test_cut: u32,
    schema: &EventSchema,
    table: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if toks[i].line >= test_cut {
            break;
        }
        let is_emit_like = (toks[i].is_ident("emit") || toks[i].is_ident("span_start"))
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(');
        let is_event_new = toks[i].is_ident("Event")
            && i + 4 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("new")
            && toks[i + 4].is_punct('(');
        if !is_emit_like && !is_event_new {
            continue;
        }
        let open = if is_emit_like { i + 1 } else { i + 4 };
        let close = match matching_paren(toks, open) {
            Some(c) => c,
            None => continue,
        };
        // --- S001: the event-name argument ---
        let arg = &toks[open + 1..close];
        let first_comma = top_level_comma(arg);
        let name_arg = &arg[..first_comma.unwrap_or(arg.len())];
        if name_arg.len() == 1 && name_arg[0].kind == TokKind::Str {
            if !schema.has_name(&name_arg[0].text) {
                out.push(Finding::new(
                    "S001",
                    &file.rel,
                    name_arg[0].line,
                    format!(
                        "event name \"{}\" is not in telemetry::schema; add it to \
                         crates/telemetry/src/schema.rs (with a `Fields:` doc) or use an \
                         existing constant",
                        name_arg[0].text
                    ),
                ));
            }
        } else if let Some(ident) = schema_const_ref(name_arg) {
            if !schema.has_const(&ident) {
                out.push(Finding::new(
                    "S001",
                    &file.rel,
                    name_arg.first().map(|t| t.line).unwrap_or(toks[i].line),
                    format!("`schema::{ident}` does not exist in crates/telemetry/src/schema.rs"),
                ));
            }
        } else if let Some((ident, line)) = final_screaming_ident(name_arg) {
            // Cross-crate: a constant declared anywhere in the
            // workspace, reached bare or through a non-`schema` path.
            if !schema.has_const(&ident) {
                if let Some(value) = table.resolve_str_const(&ident) {
                    if !schema.has_name(value) {
                        out.push(Finding::new(
                            "S001",
                            &file.rel,
                            line,
                            format!(
                                "`{ident}` resolves to \"{value}\", which is not in \
                                 telemetry::schema; add the event to \
                                 crates/telemetry/src/schema.rs or use an existing constant"
                            ),
                        ));
                    }
                }
            }
        }
        // --- S003: wall-clock field names anywhere in the call ---
        for k in 0..arg.len().saturating_sub(2) {
            if arg[k].is_ident("field")
                && arg[k + 1].is_punct('(')
                && arg[k + 2].kind == TokKind::Str
                && WALL_FIELDS.contains(&arg[k + 2].text.as_str())
            {
                out.push(Finding::new(
                    "S003",
                    &file.rel,
                    arg[k + 2].line,
                    format!(
                        "field \"{}\" smells like wall-clock time on the deterministic event \
                         plane; deterministic events carry logical time only (epoch/step/seq) — \
                         wall measurements belong in telemetry's nd-marked events",
                        arg[k + 2].text
                    ),
                ));
            }
        }
    }
}

/// Index of the matching `)` for the `(` at `open`.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the first comma at bracket depth 0 in `toks`.
fn top_level_comma(toks: &[Tok]) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Extracts the final SCREAMING_CASE identifier from a bare-ident or
/// path argument (`EPOCH`, `tschema :: INGEST_START`), for cross-crate
/// constant resolution. Returns `None` for anything more complex than
/// a path (calls, concatenations) or for non-constant-style idents.
fn final_screaming_ident(arg: &[Tok]) -> Option<(String, u32)> {
    let last = arg.last()?;
    if last.kind != TokKind::Ident
        || !arg.iter().all(|t| t.kind == TokKind::Ident || t.is_punct(':'))
    {
        return None;
    }
    let name = &last.text;
    let screaming = name.chars().any(|c| c.is_ascii_uppercase())
        && !name.chars().any(|c| c.is_ascii_lowercase());
    screaming.then(|| (name.clone(), last.line))
}

/// Extracts `IDENT` from a `[path ::] schema :: IDENT` argument.
fn schema_const_ref(arg: &[Tok]) -> Option<String> {
    for k in 0..arg.len().saturating_sub(3) {
        if arg[k].is_ident("schema")
            && arg[k + 1].is_punct(':')
            && arg[k + 2].is_punct(':')
            && arg[k + 3].kind == TokKind::Ident
        {
            return Some(arg[k + 3].text.clone());
        }
    }
    None
}

// ----- S004: profiler phase names -----

/// Finds `phase_scope!("...")` and `profile::scope(...)` call sites
/// and checks the phase name against the `PHASES` vocabulary, so
/// traces, `/metrics` labels, and `daisy top` never drift apart. A
/// `profile::scope(IDENT)` argument resolves cross-crate through the
/// workspace symbol table when the constant binds unambiguously.
/// Skips the file's test region (tests profile synthetic phase trees).
fn check_s004_phase_literals(
    file: &SourceFile,
    lexed: &Lexed,
    test_cut: u32,
    schema: &EventSchema,
    table: &SymbolTable,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    let flag = |name: &str, line: u32, out: &mut Vec<Finding>| {
        out.push(Finding::new(
            "S004",
            &file.rel,
            line,
            format!(
                "phase \"{name}\" is not in telemetry::schema::PHASES; add it there so the \
                 profile event schema, /metrics labels, and `daisy top` stay in sync"
            ),
        ));
    };
    for i in 0..toks.len() {
        if toks[i].line >= test_cut {
            break;
        }
        // phase_scope ! ( "lit" )
        let macro_lit = (toks[i].is_ident("phase_scope")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('(')
            && toks[i + 3].kind == TokKind::Str)
            .then(|| &toks[i + 3]);
        // profile :: scope ( "lit" )
        let fn_lit = (toks[i].is_ident("profile")
            && i + 5 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("scope")
            && toks[i + 4].is_punct('(')
            && toks[i + 5].kind == TokKind::Str)
            .then(|| &toks[i + 5]);
        if let Some(lit) = macro_lit.or(fn_lit) {
            if !schema.has_phase(&lit.text) {
                flag(&lit.text, lit.line, out);
            }
            continue;
        }
        // profile :: scope ( IDENT ) — cross-crate constant.
        if toks[i].is_ident("profile")
            && i + 6 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("scope")
            && toks[i + 4].is_punct('(')
            && toks[i + 5].kind == TokKind::Ident
            && toks[i + 6].is_punct(')')
        {
            if let Some(value) = table.resolve_str_const(&toks[i + 5].text) {
                if !schema.has_phase(value) {
                    flag(value, toks[i + 5].line, out);
                }
            }
        }
    }
}

// ----- S002: schema doc contracts -----

fn check_s002_schema_docs(file: &SourceFile, out: &mut Vec<Finding>) {
    let schema = crate::schema::parse(&file.src);
    for (ident, doc) in &schema.docs {
        if !doc.contains("Fields:") {
            out.push(Finding::new(
                "S002",
                &file.rel,
                schema.lines.get(ident).copied().unwrap_or(1),
                format!(
                    "schema constant `{ident}` does not document its `Fields:` contract; \
                     emitters and the report renderer drift apart without it"
                ),
            ));
        }
    }
}

// ----- H001 / H002: crate-root attributes -----

fn check_h001_h002_root_attrs(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let has_attr = |lint_name: &str, levels: &[&str]| {
        toks.windows(4).any(|w| {
            w[0].kind == TokKind::Ident
                && levels.contains(&w[0].text.as_str())
                && w[1].is_punct('(')
                && w[2].is_ident(lint_name)
                && w[3].is_punct(')')
        })
    };
    if !has_attr("unsafe_code", &["forbid", "deny"]) {
        out.push(Finding::new(
            "H001",
            &file.rel,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
    if !has_attr("missing_docs", &["warn", "deny"]) {
        out.push(Finding::new(
            "H002",
            &file.rel,
            1,
            "crate root is missing `#![warn(missing_docs)]`".to_string(),
        ));
    }
}

// ----- H003: unwrap/expect budget -----

fn check_h003_unwrap_budget(
    files: &[SourceFile],
    lexed_files: &[(usize, Lexed, Suppressions, u32)],
    out: &mut Vec<Finding>,
) {
    let budgets: BTreeMap<&str, usize> = UNWRAP_BUDGETS.iter().copied().collect();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, lexed, _, cut) in lexed_files {
        let file = &files[*idx];
        if file.kind != FileKind::Src {
            continue;
        }
        let mut n = 0usize;
        let toks = &lexed.toks;
        for i in 1..toks.len() {
            if toks[i].line >= *cut {
                break;
            }
            if (toks[i].is_ident("unwrap") || toks[i].is_ident("expect"))
                && toks[i - 1].is_punct('.')
                && i + 1 < toks.len()
                && toks[i + 1].is_punct('(')
            {
                n += 1;
            }
        }
        *counts.entry(file.crate_key.clone()).or_insert(0) += n;
    }
    for (crate_key, count) in &counts {
        let budget = budgets.get(crate_key.as_str()).copied();
        let root_rel = if crate_key == "daisy" {
            "src/lib.rs".to_string()
        } else {
            format!("crates/{crate_key}/src/lib.rs")
        };
        match budget {
            Some(budget) if *count > budget => out.push(Finding::new(
                "H003",
                &root_rel,
                1,
                format!(
                    "crate `{crate_key}` has {count} unwrap()/expect() calls in non-test code, \
                     over its budget of {budget}; handle the error (and keep the budget) or \
                     consciously raise the baseline in crates/lint/src/rules.rs"
                ),
            )),
            None if *count > 0 => out.push(Finding::new(
                "H003",
                &root_rel,
                1,
                format!(
                    "crate `{crate_key}` has no unwrap()/expect() budget; add a baseline entry \
                     to UNWRAP_BUDGETS in crates/lint/src/rules.rs"
                ),
            )),
            _ => {}
        }
    }
}

// ----- H004: dimension-carrying kernel panics -----

fn check_h004_kernel_panics(
    file: &SourceFile,
    lexed: &Lexed,
    test_cut: u32,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    const MACROS: &[&str] = &["assert", "assert_eq", "assert_ne", "panic"];
    for i in 0..toks.len() {
        if toks[i].line >= test_cut {
            break;
        }
        if toks[i].kind != TokKind::Ident || !MACROS.contains(&toks[i].text.as_str()) {
            continue;
        }
        if !(i + 2 < toks.len() && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('(')) {
            continue;
        }
        let Some(close) = matching_paren(toks, i + 2) else {
            continue;
        };
        let has_dimension_message = toks[i + 3..close]
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains('{'));
        if !has_dimension_message {
            out.push(Finding::new(
                "H004",
                &file.rel,
                toks[i].line,
                format!(
                    "kernel `{}!` without a dimension-carrying message; panic text must \
                     interpolate the offending shapes (e.g. \"matmul {{m}}x{{k}} · {{k2}}x{{n}}\")",
                    toks[i].text
                ),
            ));
        }
    }
}

// ----- M001: metric registry -----

/// Every metric the workspace emits must be declared — with its kind —
/// in `telemetry::schema::METRICS`, every registered metric must
/// actually be emitted somewhere, and every registered name must be
/// documented in `docs/OBSERVABILITY.md`. The emitted-name universe is
/// every string literal in non-test code, which also covers call sites
/// that pass the name through a variable (e.g. the kernel work
/// histograms routed through a helper).
fn check_m001_metric_registry(ctx: &LintContext, table: &SymbolTable, out: &mut Vec<Finding>) {
    for call in &table.metric_calls {
        match ctx.metrics.kind(&call.name) {
            None => out.push(Finding::new(
                "M001",
                &call.file,
                call.line,
                format!(
                    "metric \"{}\" is not registered in telemetry::schema::METRICS; declare it \
                     there with its kind so /metrics output, `daisy top`, and the docs stay in \
                     sync",
                    call.name
                ),
            )),
            Some(kind) if kind != call.func => out.push(Finding::new(
                "M001",
                &call.file,
                call.line,
                format!(
                    "metric \"{}\" is registered as a {} but constructed here with `{}(`; fix \
                     the call or the registry entry — one metric, one kind",
                    call.name, kind, call.func
                ),
            )),
            Some(_) => {}
        }
    }
    for name in ctx.metrics.kinds.keys() {
        let line = ctx.metrics.lines.get(name).copied().unwrap_or(1);
        if !table.emitted_names.contains(name) {
            out.push(Finding::new(
                "M001",
                crate::SCHEMA_REL,
                line,
                format!(
                    "metric \"{name}\" is registered but never emitted anywhere in the \
                     workspace; delete the registry entry or wire up the emitter"
                ),
            ));
        }
        if !ctx.docs.contains(name.as_str()) {
            out.push(Finding::new(
                "M001",
                crate::SCHEMA_REL,
                line,
                format!(
                    "metric \"{name}\" is registered but not documented in \
                     docs/OBSERVABILITY.md; add it to the metric vocabulary section"
                ),
            ));
        }
    }
}

// ----- K001: environment-knob registry -----

/// All `DAISY_*` environment configuration flows through
/// `telemetry::knobs`: direct `env::var("DAISY_…")` reads outside the
/// registry module are findings, any string that mentions an
/// unregistered knob name is a finding (help text and warnings cannot
/// advertise knobs that do not exist), and every registered knob must
/// be documented in `docs/OBSERVABILITY.md`.
fn check_k001_knob_registry(ctx: &LintContext, table: &SymbolTable, out: &mut Vec<Finding>) {
    for read in &table.env_reads {
        out.push(Finding::new(
            "K001",
            &read.file,
            read.line,
            format!(
                "direct env::var(\"{}\") bypasses the knob registry; read it through \
                 telemetry::knobs::raw/flag so `daisy knobs` and the docs see it",
                read.name
            ),
        ));
    }
    for mention in &table.knob_mentions {
        if !ctx.knobs.has(&mention.name) {
            out.push(Finding::new(
                "K001",
                &mention.file,
                mention.line,
                format!(
                    "\"{}\" is not a registered knob; register it in telemetry::knobs::KNOBS \
                     or fix the name (help text and messages must not advertise knobs that do \
                     not exist)",
                    mention.name
                ),
            ));
        }
    }
    for (name, line) in &ctx.knobs.lines {
        if !ctx.docs.contains(name.as_str()) {
            out.push(Finding::new(
                "K001",
                symbols::KNOBS_REL,
                *line,
                format!(
                    "knob \"{name}\" is registered but not documented in \
                     docs/OBSERVABILITY.md; add it to the knob table"
                ),
            ));
        }
    }
}

// ----- W001: wire-magic registry -----

/// Every 4/8-byte wire magic lives in `daisy_wire::magic`, exactly
/// once. Byte-string magic constants declared outside `crates/wire/src/`
/// are findings, two constants binding the same magic value are
/// findings (at every site after the first), and inlining a declared
/// magic's value as a string literal elsewhere is a finding.
fn check_w001_wire_magics(table: &SymbolTable, out: &mut Vec<Finding>) {
    const WIRE_SRC: &str = "crates/wire/src/";
    let mut first_site: BTreeMap<&str, &symbols::MagicDef> = BTreeMap::new();
    for def in &table.magic_defs {
        if !def.file.starts_with(WIRE_SRC) {
            out.push(Finding::new(
                "W001",
                &def.file,
                def.line,
                format!(
                    "wire magic `{}` (= {:?}) is declared outside daisy-wire; move it to \
                     crates/wire/src/magic.rs and re-export, so every on-disk and on-socket \
                     format shares one magic table",
                    def.ident, def.value
                ),
            ));
        }
        match first_site.get(def.value.as_str()) {
            None => {
                first_site.insert(&def.value, def);
            }
            Some(first) => out.push(Finding::new(
                "W001",
                &def.file,
                def.line,
                format!(
                    "magic value {:?} is already declared as `{}` at {}:{}; re-use that \
                     constant instead of declaring it twice",
                    def.value, first.ident, first.file, first.line
                ),
            )),
        }
    }
    let wire_values: BTreeSet<&str> = table
        .magic_defs
        .iter()
        .filter(|d| d.file.starts_with(WIRE_SRC))
        .map(|d| d.value.as_str())
        .collect();
    for (file, line, text) in &table.str_literals {
        if wire_values.contains(text.as_str()) {
            out.push(Finding::new(
                "W001",
                file,
                *line,
                format!(
                    "string literal {text:?} inlines a declared wire magic; use the \
                     daisy_wire::magic constant so format changes stay one-line"
                ),
            ));
        }
    }
}
