//! The rule implementations.
//!
//! Three families, mirroring `docs/LINTS.md`:
//!
//! * **D — determinism**: the bit-exact-at-any-thread-count contract
//!   (PR 2–4) must not be eroded by hash-ordered iteration, wall-clock
//!   reads, rogue threads, or entropy-seeded RNGs.
//! * **S — schema**: telemetry emitters and the event vocabulary in
//!   `telemetry::schema` must not drift apart.
//! * **H — hygiene**: crate-root attributes, unwrap/expect budgets,
//!   dimension-carrying kernel panics.
//!
//! Every rule is lexical (token shapes over the [`crate::lexer`]
//! stream), which buys zero dependencies at the price of known
//! heuristics; the catalogue documents each rule's blind spots.

use crate::findings::{rule, Finding};
use crate::lexer::{self, Lexed, Tok, TokKind};
use crate::schema::EventSchema;
use crate::workspace::{FileKind, SourceFile, Suppressions};
use std::collections::{BTreeMap, BTreeSet};

/// Per-crate unwrap()/expect() budgets for H003, counted over non-test
/// `src/` code. This is a **ratchet baseline**: lowering a number is
/// always welcome; raising one is a conscious, reviewed decision.
pub const UNWRAP_BUDGETS: &[(&str, usize)] = &[
    ("baselines", 2),
    ("bench", 1),
    ("core", 14),
    ("daisy", 0),
    ("data", 3),
    ("datasets", 0),
    ("eval", 10),
    ("lint", 0),
    ("nn", 1),
    ("serve", 0),
    ("telemetry", 10),
    ("tensor", 9),
    ("wire", 4),
];

/// Files exempt from D002: the telemetry crate is the workspace's one
/// sanctioned wall-clock plane (its events mark themselves `nd`).
const TIME_EXEMPT_PREFIX: &str = "crates/telemetry/";
/// The one file allowed to spawn threads (D003).
const POOL_FILE: &str = "crates/tensor/src/pool.rs";
/// The one file allowed to construct entropy/hasher randomness (D004).
const RNG_FILE: &str = "crates/tensor/src/rng.rs";
/// Kernel files whose assertions must carry dimensions (H004).
const KERNEL_FILES: &[&str] = &["crates/tensor/src/linalg.rs", "crates/tensor/src/conv.rs"];

/// Map/set methods whose iteration order is hash-seed-dependent.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Field names that denote wall-clock measurements (S003).
const WALL_FIELDS: &[&str] = &[
    "ms",
    "wall",
    "wall_ms",
    "elapsed",
    "elapsed_ms",
    "duration",
    "duration_ms",
    "nanos",
    "micros",
    "secs",
    "seconds",
];

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints a set of in-memory source files against a parsed event
/// schema. This is the engine behind [`crate::lint_workspace`]; tests
/// call it directly with fixture files.
pub fn lint_files(files: &[SourceFile], schema: &EventSchema) -> LintReport {
    let mut all: Vec<Finding> = Vec::new();
    let mut lexed_files: Vec<(usize, Lexed, Suppressions, u32)> = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        let lexed = lexer::lex(&file.src);
        let suppressions = Suppressions::parse(&lexed.comments);
        let cut = test_cut_line(&lexed.toks);
        lexed_files.push((idx, lexed, suppressions, cut));
    }

    for (idx, lexed, _, cut) in &lexed_files {
        let file = &files[*idx];
        check_d001_hash_iteration(file, lexed, &mut all);
        check_d002_wall_clock(file, lexed, &mut all);
        check_d003_thread_spawn(file, lexed, &mut all);
        check_d004_rng_construction(file, lexed, &mut all);
        if file.kind == FileKind::Src && !file.rel.starts_with(TIME_EXEMPT_PREFIX) {
            check_s001_s003_event_calls(file, lexed, *cut, schema, &mut all);
            check_s004_phase_literals(file, lexed, *cut, schema, &mut all);
        }
        if file.rel == "crates/telemetry/src/schema.rs" {
            check_s002_schema_docs(file, &mut all);
        }
        if file.is_crate_root() {
            check_h001_h002_root_attrs(file, lexed, &mut all);
        }
        if KERNEL_FILES.contains(&file.rel.as_str()) {
            check_h004_kernel_panics(file, lexed, *cut, &mut all);
        }
    }

    check_h003_unwrap_budget(files, &lexed_files, &mut all);

    // Apply suppressions, dedupe (several patterns can fire on one
    // line, e.g. `use std::time::Instant`), and sort.
    let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    let mut kept = Vec::new();
    for f in all {
        let file_scoped = rule(f.rule).is_some_and(|r| r.file_scoped);
        let suppressed = lexed_files.iter().any(|(idx, _, sup, _)| {
            files[*idx].rel == f.file && sup.allows(f.rule, f.line, file_scoped)
        });
        if suppressed {
            continue;
        }
        if seen.insert((f.file.clone(), f.line, f.rule)) {
            kept.push(f);
        }
    }
    crate::findings::sort(&mut kept);
    LintReport {
        findings: kept,
        files_scanned: files.len(),
    }
}

/// Line of the first `#[cfg(test)]` attribute, or `u32::MAX` when the
/// file has none. By workspace convention test modules close out a
/// file, so "every line at or after the first `#[cfg(test)]`" is the
/// test region for the rules that exempt tests (S001, H003).
fn test_cut_line(toks: &[Tok]) -> u32 {
    for w in toks.windows(7) {
        if w[0].is_punct('#')
            && w[1].is_punct('[')
            && w[2].is_ident("cfg")
            && w[3].is_punct('(')
            && w[4].is_ident("test")
            && w[5].is_punct(')')
            && w[6].is_punct(']')
        {
            return w[0].line;
        }
    }
    u32::MAX
}

// ----- D001: HashMap/HashSet iteration -----

fn check_d001_hash_iteration(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    // Pass 1: names bound to hash-ordered collections, via type
    // annotations (`name: HashMap<..>`, incl. `std::collections::`
    // paths and struct fields) and constructor bindings
    // (`let name = HashMap::new()`).
    let mut hash_names: BTreeSet<String> = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over path segments / references to the annotation.
        let mut j = i;
        while j > 0 {
            let prev = &toks[j - 1];
            if prev.is_punct(':')
                || prev.is_punct('&')
                || prev.is_ident("std")
                || prev.is_ident("collections")
                || prev.is_ident("mut")
                || prev.kind == TokKind::Lifetime
            {
                j -= 1;
            } else {
                break;
            }
        }
        let crossed_colon = j < i && toks[j..i].iter().any(|t| t.is_punct(':'));
        if crossed_colon && j > 0 && toks[j - 1].kind == TokKind::Ident {
            hash_names.insert(toks[j - 1].text.clone());
        }
        // `name = HashMap::new(...)` / `HashSet::with_capacity(...)`.
        if i >= 2 && toks[i - 1].is_punct('=') && toks[i - 2].kind == TokKind::Ident {
            hash_names.insert(toks[i - 2].text.clone());
        }
    }
    if hash_names.is_empty() {
        return;
    }
    // Pass 2: flag hash-ordered iteration over tracked names.
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !hash_names.contains(&toks[i].text) {
            continue;
        }
        // name.iter() / .keys() / ... — anything order-dependent.
        if i + 3 < toks.len()
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is_punct('(')
        {
            out.push(Finding::new(
                "D001",
                &file.rel,
                toks[i + 2].line,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet in hash-seed order; use \
                     BTreeMap/BTreeSet or collect-and-sort before iterating",
                    toks[i].text, toks[i + 2].text
                ),
            ));
        }
        // for pat in [&[mut]] name { ... }
        if i + 1 < toks.len() && toks[i + 1].is_punct('{') {
            let mut j = i;
            while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
                j -= 1;
            }
            if j > 0 && toks[j - 1].is_ident("in") {
                out.push(Finding::new(
                    "D001",
                    &file.rel,
                    toks[i].line,
                    format!(
                        "`for .. in {}` iterates a HashMap/HashSet in hash-seed order; use \
                         BTreeMap/BTreeSet or collect-and-sort before iterating",
                        toks[i].text
                    ),
                ));
            }
        }
    }
}

// ----- D002: wall-clock reads -----

fn check_d002_wall_clock(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    if file.rel.starts_with(TIME_EXEMPT_PREFIX) {
        return;
    }
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        let flagged = if toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime") {
            Some(toks[i].text.as_str())
        } else if toks[i].is_ident("std")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("time")
        {
            Some("std::time")
        } else {
            None
        };
        if let Some(what) = flagged {
            out.push(Finding::new(
                "D002",
                &file.rel,
                toks[i].line,
                format!(
                    "`{what}` reads the wall clock in deterministic code; wall time may only \
                     enter telemetry's nd-marked plane (crates/telemetry)"
                ),
            ));
        }
    }
}

// ----- D003: thread spawning -----

fn check_d003_thread_spawn(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    if file.rel == POOL_FILE {
        return;
    }
    let toks = &lexed.toks;
    for i in 1..toks.len() {
        if toks[i].is_ident("spawn")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
            && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'))
        {
            out.push(Finding::new(
                "D003",
                &file.rel,
                toks[i].line,
                "thread spawning outside tensor::pool breaks the deterministic scheduling \
                 contract; dispatch work through the worker pool instead"
                    .to_string(),
            ));
        }
    }
}

// ----- D004: RNG construction -----

fn check_d004_rng_construction(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    if file.rel == RNG_FILE {
        return;
    }
    const BANNED: &[&str] = &[
        "RandomState",
        "DefaultHasher",
        "thread_rng",
        "from_entropy",
        "getrandom",
    ];
    for t in &lexed.toks {
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            out.push(Finding::new(
                "D004",
                &file.rel,
                t.line,
                format!(
                    "`{}` constructs nondeterministic randomness; all RNG streams must come \
                     from tensor::rng's seeded generator",
                    t.text
                ),
            ));
        }
    }
}

// ----- S001 / S003: event emission call sites -----

/// Finds `emit(...)`, `span_start(...)`, and `Event::new(...)` calls;
/// checks the event-name argument against the vocabulary (S001) and
/// field-name literals against the wall-clock blocklist (S003). Both
/// rules skip the file's test region.
fn check_s001_s003_event_calls(
    file: &SourceFile,
    lexed: &Lexed,
    test_cut: u32,
    schema: &EventSchema,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if toks[i].line >= test_cut {
            break;
        }
        let is_emit_like = (toks[i].is_ident("emit") || toks[i].is_ident("span_start"))
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(');
        let is_event_new = toks[i].is_ident("Event")
            && i + 4 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("new")
            && toks[i + 4].is_punct('(');
        if !is_emit_like && !is_event_new {
            continue;
        }
        let open = if is_emit_like { i + 1 } else { i + 4 };
        let close = match matching_paren(toks, open) {
            Some(c) => c,
            None => continue,
        };
        // --- S001: the event-name argument ---
        let arg = &toks[open + 1..close];
        let first_comma = top_level_comma(arg);
        let name_arg = &arg[..first_comma.unwrap_or(arg.len())];
        if name_arg.len() == 1 && name_arg[0].kind == TokKind::Str {
            if !schema.has_name(&name_arg[0].text) {
                out.push(Finding::new(
                    "S001",
                    &file.rel,
                    name_arg[0].line,
                    format!(
                        "event name \"{}\" is not in telemetry::schema; add it to \
                         crates/telemetry/src/schema.rs (with a `Fields:` doc) or use an \
                         existing constant",
                        name_arg[0].text
                    ),
                ));
            }
        } else if let Some(ident) = schema_const_ref(name_arg) {
            if !schema.has_const(&ident) {
                out.push(Finding::new(
                    "S001",
                    &file.rel,
                    name_arg.first().map(|t| t.line).unwrap_or(toks[i].line),
                    format!("`schema::{ident}` does not exist in crates/telemetry/src/schema.rs"),
                ));
            }
        }
        // --- S003: wall-clock field names anywhere in the call ---
        for k in 0..arg.len().saturating_sub(2) {
            if arg[k].is_ident("field")
                && arg[k + 1].is_punct('(')
                && arg[k + 2].kind == TokKind::Str
                && WALL_FIELDS.contains(&arg[k + 2].text.as_str())
            {
                out.push(Finding::new(
                    "S003",
                    &file.rel,
                    arg[k + 2].line,
                    format!(
                        "field \"{}\" smells like wall-clock time on the deterministic event \
                         plane; deterministic events carry logical time only (epoch/step/seq) — \
                         wall measurements belong in telemetry's nd-marked events",
                        arg[k + 2].text
                    ),
                ));
            }
        }
    }
}

/// Index of the matching `)` for the `(` at `open`.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the first comma at bracket depth 0 in `toks`.
fn top_level_comma(toks: &[Tok]) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Extracts `IDENT` from a `[path ::] schema :: IDENT` argument.
fn schema_const_ref(arg: &[Tok]) -> Option<String> {
    for k in 0..arg.len().saturating_sub(3) {
        if arg[k].is_ident("schema")
            && arg[k + 1].is_punct(':')
            && arg[k + 2].is_punct(':')
            && arg[k + 3].kind == TokKind::Ident
        {
            return Some(arg[k + 3].text.clone());
        }
    }
    None
}

// ----- S004: profiler phase names -----

/// Finds `phase_scope!("...")` and `profile::scope("...")` call sites
/// and checks the literal against the `PHASES` vocabulary, so traces,
/// `/metrics` labels, and `daisy top` never drift apart. Skips the
/// file's test region (tests profile synthetic phase trees).
fn check_s004_phase_literals(
    file: &SourceFile,
    lexed: &Lexed,
    test_cut: u32,
    schema: &EventSchema,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if toks[i].line >= test_cut {
            break;
        }
        // phase_scope ! ( "lit" )
        let macro_lit = (toks[i].is_ident("phase_scope")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('(')
            && toks[i + 3].kind == TokKind::Str)
            .then(|| &toks[i + 3]);
        // profile :: scope ( "lit" )
        let fn_lit = (toks[i].is_ident("profile")
            && i + 5 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("scope")
            && toks[i + 4].is_punct('(')
            && toks[i + 5].kind == TokKind::Str)
            .then(|| &toks[i + 5]);
        if let Some(lit) = macro_lit.or(fn_lit) {
            if !schema.has_phase(&lit.text) {
                out.push(Finding::new(
                    "S004",
                    &file.rel,
                    lit.line,
                    format!(
                        "phase \"{}\" is not in telemetry::schema::PHASES; add it there so the \
                         profile event schema, /metrics labels, and `daisy top` stay in sync",
                        lit.text
                    ),
                ));
            }
        }
    }
}

// ----- S002: schema doc contracts -----

fn check_s002_schema_docs(file: &SourceFile, out: &mut Vec<Finding>) {
    let schema = crate::schema::parse(&file.src);
    for (ident, doc) in &schema.docs {
        if !doc.contains("Fields:") {
            out.push(Finding::new(
                "S002",
                &file.rel,
                schema.lines.get(ident).copied().unwrap_or(1),
                format!(
                    "schema constant `{ident}` does not document its `Fields:` contract; \
                     emitters and the report renderer drift apart without it"
                ),
            ));
        }
    }
}

// ----- H001 / H002: crate-root attributes -----

fn check_h001_h002_root_attrs(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    let has_attr = |lint_name: &str, levels: &[&str]| {
        toks.windows(4).any(|w| {
            w[0].kind == TokKind::Ident
                && levels.contains(&w[0].text.as_str())
                && w[1].is_punct('(')
                && w[2].is_ident(lint_name)
                && w[3].is_punct(')')
        })
    };
    if !has_attr("unsafe_code", &["forbid", "deny"]) {
        out.push(Finding::new(
            "H001",
            &file.rel,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
    if !has_attr("missing_docs", &["warn", "deny"]) {
        out.push(Finding::new(
            "H002",
            &file.rel,
            1,
            "crate root is missing `#![warn(missing_docs)]`".to_string(),
        ));
    }
}

// ----- H003: unwrap/expect budget -----

fn check_h003_unwrap_budget(
    files: &[SourceFile],
    lexed_files: &[(usize, Lexed, Suppressions, u32)],
    out: &mut Vec<Finding>,
) {
    let budgets: BTreeMap<&str, usize> = UNWRAP_BUDGETS.iter().copied().collect();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, lexed, _, cut) in lexed_files {
        let file = &files[*idx];
        if file.kind != FileKind::Src {
            continue;
        }
        let mut n = 0usize;
        let toks = &lexed.toks;
        for i in 1..toks.len() {
            if toks[i].line >= *cut {
                break;
            }
            if (toks[i].is_ident("unwrap") || toks[i].is_ident("expect"))
                && toks[i - 1].is_punct('.')
                && i + 1 < toks.len()
                && toks[i + 1].is_punct('(')
            {
                n += 1;
            }
        }
        *counts.entry(file.crate_key.clone()).or_insert(0) += n;
    }
    for (crate_key, count) in &counts {
        let budget = budgets.get(crate_key.as_str()).copied();
        let root_rel = if crate_key == "daisy" {
            "src/lib.rs".to_string()
        } else {
            format!("crates/{crate_key}/src/lib.rs")
        };
        match budget {
            Some(budget) if *count > budget => out.push(Finding::new(
                "H003",
                &root_rel,
                1,
                format!(
                    "crate `{crate_key}` has {count} unwrap()/expect() calls in non-test code, \
                     over its budget of {budget}; handle the error (and keep the budget) or \
                     consciously raise the baseline in crates/lint/src/rules.rs"
                ),
            )),
            None if *count > 0 => out.push(Finding::new(
                "H003",
                &root_rel,
                1,
                format!(
                    "crate `{crate_key}` has no unwrap()/expect() budget; add a baseline entry \
                     to UNWRAP_BUDGETS in crates/lint/src/rules.rs"
                ),
            )),
            _ => {}
        }
    }
}

// ----- H004: dimension-carrying kernel panics -----

fn check_h004_kernel_panics(
    file: &SourceFile,
    lexed: &Lexed,
    test_cut: u32,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    const MACROS: &[&str] = &["assert", "assert_eq", "assert_ne", "panic"];
    for i in 0..toks.len() {
        if toks[i].line >= test_cut {
            break;
        }
        if toks[i].kind != TokKind::Ident || !MACROS.contains(&toks[i].text.as_str()) {
            continue;
        }
        if !(i + 2 < toks.len() && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('(')) {
            continue;
        }
        let Some(close) = matching_paren(toks, i + 2) else {
            continue;
        };
        let has_dimension_message = toks[i + 3..close]
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains('{'));
        if !has_dimension_message {
            out.push(Finding::new(
                "H004",
                &file.rel,
                toks[i].line,
                format!(
                    "kernel `{}!` without a dimension-carrying message; panic text must \
                     interpolate the offending shapes (e.g. \"matmul {{m}}x{{k}} · {{k2}}x{{n}}\")",
                    toks[i].text
                ),
            ));
        }
    }
}
