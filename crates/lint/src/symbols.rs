//! Pass 1 of the two-pass analyzer: the workspace symbol table.
//!
//! Where the per-file rules see one token stream at a time, the
//! registry rules (M001, K001, W001) and the cross-crate upgrades of
//! S001/S004 need facts *about the whole workspace*: which string
//! constants exist anywhere, where metrics are registered, where
//! `DAISY_*` environment variables are read, and where wire magics are
//! declared. [`build`] collects those facts in one deterministic sweep
//! over the already-lexed files; pass 2 (the rules) then queries the
//! table instead of re-walking the tree.
//!
//! Everything here honours the same test-region convention as the
//! per-file rules: tokens at or after a file's first `#[cfg(test)]`
//! line are invisible to the table, and files under `tests/` are
//! skipped entirely.

use crate::lexer::{Tok, TokKind};
use crate::workspace::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// One `counter("…")` / `gauge("…")` / `histogram("…")` registration
/// call site with a literal name argument.
#[derive(Debug, Clone)]
pub struct MetricCall {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the name literal.
    pub line: u32,
    /// The constructor called: `counter`, `gauge`, or `histogram`.
    pub func: String,
    /// The metric name literal.
    pub name: String,
}

/// One 4- or 8-byte byte-string constant declaration
/// (`const IDENT: &[u8; N] = b"…";`) — the shape every wire magic in
/// the workspace uses.
#[derive(Debug, Clone)]
pub struct MagicDef {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the declaration.
    pub line: u32,
    /// The constant's identifier.
    pub ident: String,
    /// The magic's character content (byte-ness is lexical only).
    pub value: String,
}

/// One direct `env::var("DAISY_…")` / `env::var_os("DAISY_…")` call
/// site with a literal name.
#[derive(Debug, Clone)]
pub struct EnvRead {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the call.
    pub line: u32,
    /// The environment variable named by the literal.
    pub name: String,
}

/// One `DAISY_*` word appearing inside any string literal — knob names
/// in `knobs::raw("…")` calls, help text, warning messages. K001 holds
/// all of them to the registry so docs and messages cannot mention a
/// knob that does not exist.
#[derive(Debug, Clone)]
pub struct KnobMention {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the literal.
    pub line: u32,
    /// The extracted `DAISY_[A-Z0-9_]+` word.
    pub name: String,
}

/// The workspace symbol table pass 2 queries.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// `&str` constants declared anywhere in non-test `src/` code:
    /// identifier → the set of distinct values bound to it across the
    /// workspace. S001/S004 resolve a bare `IDENT` argument through
    /// this map, but only when the binding is unambiguous (one value).
    pub str_consts: BTreeMap<String, BTreeSet<String>>,
    /// Metric registration call sites with literal names.
    pub metric_calls: Vec<MetricCall>,
    /// Every string literal in non-test src/bench/example code outside
    /// the telemetry schema module — the "does anything emit this
    /// name?" universe for M001's never-emitted check.
    pub emitted_names: BTreeSet<String>,
    /// Byte-string magic constant declarations.
    pub magic_defs: Vec<MagicDef>,
    /// Direct `DAISY_*` environment reads outside the knob registry.
    pub env_reads: Vec<EnvRead>,
    /// `DAISY_*` words inside string literals (registry module
    /// excluded — that is where the names are *declared*).
    pub knob_mentions: Vec<KnobMention>,
    /// String literals outside `crates/wire/src/` that could inline a
    /// wire magic: (file, line, text). W001 checks these against the
    /// declared magic values.
    pub str_literals: Vec<(String, u32, String)>,
}

impl SymbolTable {
    /// Resolves a constant identifier to its string value, but only
    /// when the workspace binds it unambiguously (exactly one distinct
    /// value). Two crates declaring the same identifier with different
    /// values is ambiguous; callers skip rather than guess.
    pub fn resolve_str_const(&self, ident: &str) -> Option<&str> {
        let values = self.str_consts.get(ident)?;
        if values.len() == 1 {
            values.iter().next().map(String::as_str)
        } else {
            None
        }
    }
}

/// The knob-registry module: the one sanctioned `env::var` site, and
/// the place `DAISY_*` names are declared rather than mentioned.
pub const KNOBS_REL: &str = "crates/telemetry/src/knobs.rs";

const METRIC_FUNCS: &[&str] = &["counter", "gauge", "histogram"];

/// Builds the symbol table from pre-lexed files. `views` pairs each
/// file with its token stream and test-cut line (see
/// `rules::test_cut_line`); order follows the deterministic workspace
/// collection order, so the table is reproducible byte for byte.
pub fn build(views: &[(&SourceFile, &[Tok], u32)]) -> SymbolTable {
    let mut table = SymbolTable::default();
    for (file, toks, cut) in views {
        if file.kind == FileKind::Test {
            continue;
        }
        scan_file(file, toks, *cut, &mut table);
    }
    table
}

fn scan_file(file: &SourceFile, toks: &[Tok], cut: u32, table: &mut SymbolTable) {
    let in_schema = file.rel == crate::SCHEMA_REL;
    let in_knobs = file.rel == KNOBS_REL;
    let in_wire = file.rel.starts_with("crates/wire/src/");
    for i in 0..toks.len() {
        if toks[i].line >= cut {
            break;
        }
        // --- string-constant bindings (Src only) ---
        if file.kind == FileKind::Src {
            if let Some((ident, value)) = str_const_at(toks, i) {
                table
                    .str_consts
                    .entry(ident)
                    .or_default()
                    .insert(value);
            }
            if let Some(def) = magic_def_at(file, toks, i) {
                table.magic_defs.push(def);
            }
        }
        // --- metric registration calls ---
        if toks[i].kind == TokKind::Ident
            && METRIC_FUNCS.contains(&toks[i].text.as_str())
            && i + 2 < toks.len()
            && toks[i + 1].is_punct('(')
            && toks[i + 2].kind == TokKind::Str
        {
            table.metric_calls.push(MetricCall {
                file: file.rel.clone(),
                line: toks[i + 2].line,
                func: toks[i].text.clone(),
                name: toks[i + 2].text.clone(),
            });
        }
        // --- direct DAISY_* environment reads ---
        if !in_knobs
            && toks[i].kind == TokKind::Ident
            && (toks[i].text == "var" || toks[i].text == "var_os")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct('(')
            && toks[i + 2].kind == TokKind::Str
            && toks[i + 2].text.starts_with("DAISY_")
        {
            table.env_reads.push(EnvRead {
                file: file.rel.clone(),
                line: toks[i + 2].line,
                name: toks[i + 2].text.clone(),
            });
        }
        // --- string-literal facts ---
        if toks[i].kind == TokKind::Str {
            if !in_schema {
                table.emitted_names.insert(toks[i].text.clone());
            }
            if !in_wire {
                table
                    .str_literals
                    .push((file.rel.clone(), toks[i].line, toks[i].text.clone()));
            }
            if !in_knobs {
                for word in daisy_words(&toks[i].text) {
                    table.knob_mentions.push(KnobMention {
                        file: file.rel.clone(),
                        line: toks[i].line,
                        name: word,
                    });
                }
            }
        }
    }
}

/// Matches `[pub] const IDENT : & ['static] str = "value" ;` at `i`
/// (with `i` on `const`).
fn str_const_at(toks: &[Tok], i: usize) -> Option<(String, String)> {
    if !toks[i].is_ident("const") {
        return None;
    }
    let mut j = i + 1;
    if toks.get(j)?.kind != TokKind::Ident {
        return None;
    }
    let ident = toks[j].text.clone();
    j += 1;
    if !toks.get(j)?.is_punct(':') {
        return None;
    }
    j += 1;
    if !toks.get(j)?.is_punct('&') {
        return None;
    }
    j += 1;
    if toks.get(j)?.kind == TokKind::Lifetime {
        j += 1;
    }
    if !toks.get(j)?.is_ident("str") {
        return None;
    }
    j += 1;
    if !toks.get(j)?.is_punct('=') {
        return None;
    }
    j += 1;
    if toks.get(j)?.kind != TokKind::Str {
        return None;
    }
    Some((ident, toks[j].text.clone()))
}

/// Matches `const IDENT : & [ u8 ; 4|8 ] = b"…" ;` at `i` (with `i` on
/// `const`). This is the declaration shape of every wire magic; the
/// lexer strips the `b` prefix, so the pattern keys on the
/// `&[u8; N]` type annotation rather than the literal's byte-ness.
fn magic_def_at(file: &SourceFile, toks: &[Tok], i: usize) -> Option<MagicDef> {
    if !toks[i].is_ident("const") {
        return None;
    }
    let t = |k: usize| toks.get(i + k);
    if t(1)?.kind != TokKind::Ident
        || !t(2)?.is_punct(':')
        || !t(3)?.is_punct('&')
        || !t(4)?.is_punct('[')
        || !t(5)?.is_ident("u8")
        || !t(6)?.is_punct(';')
        || t(7)?.kind != TokKind::Num
        || !(t(7)?.text == "4" || t(7)?.text == "8")
        || !t(8)?.is_punct(']')
        || !t(9)?.is_punct('=')
        || t(10)?.kind != TokKind::Str
    {
        return None;
    }
    Some(MagicDef {
        file: file.rel.clone(),
        line: toks[i].line,
        ident: toks[i + 1].text.clone(),
        value: toks[i + 10].text.clone(),
    })
}

/// Extracts every `DAISY_[A-Z0-9_]+` word from a string literal.
fn daisy_words(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut words = Vec::new();
    let mut start = 0;
    while let Some(pos) = text[start..].find("DAISY_") {
        let begin = start + pos;
        // Reject a match glued to a preceding word character
        // ("XDAISY_FOO" is not a knob name).
        if begin > 0 {
            let prev = bytes[begin - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                start = begin + "DAISY_".len();
                continue;
            }
        }
        let mut end = begin + "DAISY_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase() || bytes[end].is_ascii_digit() || bytes[end] == b'_')
        {
            end += 1;
        }
        let word = &text[begin..end];
        // A full name, not a prefix mention like "DAISY_SERVE_*".
        if end > begin + "DAISY_".len() && !word.ends_with('_') {
            words.push(word.to_string());
        }
        start = end;
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use std::path::PathBuf;

    fn file(rel: &str, kind: FileKind, src: &str) -> SourceFile {
        SourceFile {
            path: PathBuf::new(),
            rel: rel.to_string(),
            crate_key: "x".into(),
            kind,
            src: src.to_string(),
        }
    }

    #[test]
    fn collects_consts_metrics_env_and_magics() {
        let src = r#"
pub const NAME: &str = "the_event";
const MAGIC: &[u8; 8] = b"DAISYZZ9";
fn f() {
    metrics::counter("pool.jobs").add(1);
    let v = std::env::var("DAISY_THREADS");
    eprintln!("set DAISY_FULL=1 for larger runs");
}
#[cfg(test)]
mod tests {
    fn g() { let _ = std::env::var("DAISY_SECRET"); }
}
"#;
        let f = file("crates/x/src/lib.rs", FileKind::Src, src);
        let lexed = lexer::lex(&f.src);
        let cut = crate::rules::test_cut_line(&lexed.toks);
        let table = build(&[(&f, lexed.toks.as_slice(), cut)]);
        assert!(table.str_consts["NAME"].contains("the_event"));
        assert_eq!(table.magic_defs.len(), 1);
        assert_eq!(table.magic_defs[0].value, "DAISYZZ9");
        assert_eq!(table.metric_calls.len(), 1);
        assert_eq!(table.metric_calls[0].func, "counter");
        assert_eq!(table.metric_calls[0].name, "pool.jobs");
        // The test region's env read is invisible.
        assert_eq!(table.env_reads.len(), 1);
        assert_eq!(table.env_reads[0].name, "DAISY_THREADS");
        let words: Vec<&str> = table.knob_mentions.iter().map(|m| m.name.as_str()).collect();
        assert!(words.contains(&"DAISY_THREADS"));
        assert!(words.contains(&"DAISY_FULL"));
        assert!(!words.contains(&"DAISY_SECRET"));
    }

    #[test]
    fn daisy_word_extraction_handles_punctuation() {
        assert_eq!(daisy_words("set DAISY_FULL=1"), vec!["DAISY_FULL"]);
        assert_eq!(
            daisy_words("DAISY_ROWS and DAISY_ITERS."),
            vec!["DAISY_ROWS", "DAISY_ITERS"]
        );
        assert!(daisy_words("XDAISY_NOT a knob").is_empty());
        assert!(daisy_words("DAISY_ alone").is_empty());
    }
}
