//! Workspace discovery: which files to lint, which crate each belongs
//! to, and where the workspace root is.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a source file lives, which decides rule applicability (e.g.
/// the schema-vocabulary rules only apply to `src/` code, not to
/// integration tests or benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library / binary source under a `src/` directory.
    Src,
    /// Integration tests under a `tests/` directory.
    Test,
    /// Benchmarks under a `benches/` directory.
    Bench,
    /// Examples under an `examples/` directory.
    Example,
}

/// One workspace source file, read into memory.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (stable across
    /// platforms; this is what findings report).
    pub rel: String,
    /// Short crate key: the directory name under `crates/` (`core`,
    /// `tensor`, ...) or `daisy` for the root package.
    pub crate_key: String,
    /// Directory class.
    pub kind: FileKind,
    /// File contents.
    pub src: String,
}

impl SourceFile {
    /// True for the crate-root library file (`src/lib.rs`).
    pub fn is_crate_root(&self) -> bool {
        self.rel == "src/lib.rs" || (self.rel.starts_with("crates/") && self.rel.ends_with("/src/lib.rs"))
    }
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every `.rs` file the linter covers: the root package's
/// `src/`, `tests/`, `examples/`, and each member crate's `src/`,
/// `tests/`, `benches/`, `examples/`. Returned sorted by relative path
/// so every pass over the workspace is deterministic.
pub fn collect(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let dirs: [(&str, FileKind); 3] =
        [("src", FileKind::Src), ("tests", FileKind::Test), ("examples", FileKind::Example)];
    for (sub, kind) in dirs {
        walk(root, &root.join(sub), "daisy", kind, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let key = member
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("unknown")
                .to_string();
            for (sub, kind) in [
                ("src", FileKind::Src),
                ("tests", FileKind::Test),
                ("benches", FileKind::Bench),
                ("examples", FileKind::Example),
            ] {
                walk(root, &member.join(sub), &key, kind, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(
    root: &Path,
    dir: &Path,
    crate_key: &str,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(root, &path, crate_key, kind, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let src = fs::read_to_string(&path)?;
            out.push(SourceFile {
                path,
                rel,
                crate_key: crate_key.to_string(),
                kind,
                src,
            });
        }
    }
    Ok(())
}

/// Per-line suppressions parsed from `// daisy-lint: allow(RULE, ...)`
/// comments. A suppression covers the comment's own line and the line
/// directly below it (so both trailing and standalone styles work);
/// file-scoped rules accept an allow anywhere in the file.
#[derive(Debug, Default)]
pub struct Suppressions {
    by_line: BTreeMap<u32, Vec<String>>,
    whole_file: Vec<String>,
}

impl Suppressions {
    /// Parses suppressions out of a file's comments.
    pub fn parse(comments: &[crate::lexer::Comment]) -> Suppressions {
        let mut s = Suppressions::default();
        for c in comments {
            let Some(idx) = c.text.find("daisy-lint:") else {
                continue;
            };
            let rest = &c.text[idx + "daisy-lint:".len()..];
            let rest = rest.trim_start();
            let Some(args) = rest.strip_prefix("allow") else {
                continue;
            };
            let Some(open) = args.find('(') else { continue };
            let Some(close) = args[open..].find(')') else {
                continue;
            };
            for rule_id in args[open + 1..open + close].split(',') {
                let rule_id = rule_id.trim().to_string();
                if rule_id.is_empty() {
                    continue;
                }
                s.whole_file.push(rule_id.clone());
                s.by_line.entry(c.line).or_default().push(rule_id.clone());
                s.by_line.entry(c.line + 1).or_default().push(rule_id);
            }
        }
        s
    }

    /// Is `rule_id` suppressed at `line` (or file-wide, when the rule
    /// is file-scoped)?
    pub fn allows(&self, rule_id: &str, line: u32, file_scoped: bool) -> bool {
        if file_scoped && self.whole_file.iter().any(|r| r == rule_id) {
            return true;
        }
        self.by_line
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    #[test]
    fn suppression_covers_own_and_next_line() {
        let src = "\
// daisy-lint: allow(D001)
let x = 1; // daisy-lint: allow(D002, H004)
let y = 2;
";
        let lexed = lexer::lex(src);
        let s = Suppressions::parse(&lexed.comments);
        assert!(s.allows("D001", 1, false));
        assert!(s.allows("D001", 2, false));
        assert!(!s.allows("D001", 3, false));
        assert!(s.allows("D002", 2, false));
        assert!(s.allows("H004", 2, false));
        assert!(s.allows("H004", 3, false));
        assert!(!s.allows("D003", 2, false));
        // File-scoped rules match anywhere.
        assert!(s.allows("D002", 999, true));
    }

    #[test]
    fn find_root_walks_up() {
        let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn crate_root_detection() {
        let mk = |rel: &str| SourceFile {
            path: PathBuf::new(),
            rel: rel.to_string(),
            crate_key: String::new(),
            kind: FileKind::Src,
            src: String::new(),
        };
        assert!(mk("src/lib.rs").is_crate_root());
        assert!(mk("crates/core/src/lib.rs").is_crate_root());
        assert!(!mk("crates/core/src/train.rs").is_crate_root());
        assert!(!mk("src/main.rs").is_crate_root());
    }
}
