//! `daisy-lint` — standalone entry point (`cargo run -p daisy-lint`).
//! The same front end is mounted as `daisy lint`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(daisy_lint::cli::cli(&args) as u8)
}
