//! The linter against real workspaces: the repo's own sources must be
//! clean (this is the CI gate), the JSON rendering must match its
//! documented shape, and a seeded violation in a scratch workspace must
//! fail the binary with a finding that names the rule, file, and line.

use daisy_lint::{lint_workspace, render_json, workspace};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the lint crate lives inside the daisy workspace")
}

/// The tentpole acceptance check: `daisy lint` has nothing to say about
/// the workspace that ships it. Every historical violation is either
/// fixed or carries an explicit `daisy-lint: allow` with a reason.
#[test]
fn the_workspace_lints_clean() {
    let report = lint_workspace(&repo_root()).expect("workspace is readable");
    assert!(
        report.is_clean(),
        "the workspace must lint clean; found:\n{}",
        daisy_lint::render_human(&report.findings, report.files_scanned)
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}); did workspace discovery break?",
        report.files_scanned
    );
}

/// `--json` output shape, pinned: tool/version header, a summary with
/// counts, and per-finding rule/severity/file/line/message keys.
#[test]
fn json_rendering_matches_the_documented_shape() {
    use daisy_lint::Finding;
    let findings = vec![
        Finding::new("D001", "crates/core/src/x.rs", 12, "it \"iterates\"".to_string()),
        Finding::new("H003", "src/lib.rs", 1, "over budget".to_string()),
    ];
    let json = render_json(&findings, 7);
    assert!(json.starts_with("{\"tool\":\"daisy-lint\",\"version\":1,"));
    assert!(json.contains("\"summary\":{\"files\":7,\"errors\":1,\"warnings\":1}"));
    assert!(json.contains(
        "{\"rule\":\"D001\",\"severity\":\"error\",\"file\":\"crates/core/src/x.rs\",\
         \"line\":12,\"message\":\"it \\\"iterates\\\"\"}"
    ));
    assert!(json.contains("\"rule\":\"H003\",\"severity\":\"warning\""));
    // Exactly one top-level object, no trailing junk.
    assert!(json.trim_end().ends_with("]}"));
}

/// Builds a minimal scratch workspace with one seeded D001 violation
/// (a `for` loop over a HashMap in crates/core).
fn write_seeded_workspace(dir: &Path) {
    fs::create_dir_all(dir.join("crates/core/src")).unwrap();
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/core\"]\n").unwrap();
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "//! Seeded-violation fixture crate.\n\
         #![forbid(unsafe_code)]\n\
         #![warn(missing_docs)]\n\
         use std::collections::HashMap;\n\
         /// Iterates a hash map — the seeded determinism violation.\n\
         pub fn f(m: &HashMap<u32, u32>) -> u32 {\n\
             let mut total = 0;\n\
             for (_, v) in m {\n\
                 total += v;\n\
             }\n\
             total\n\
         }\n",
    )
    .unwrap();
}

/// End-to-end through the real binary: a seeded violation makes
/// `daisy-lint --json` exit non-zero and report rule, file, and line.
#[test]
fn seeded_violation_fails_the_binary_with_rule_file_and_line() {
    let dir = std::env::temp_dir().join(format!("daisy-lint-seeded-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    write_seeded_workspace(&dir);

    let out = Command::new(env!("CARGO_BIN_EXE_daisy-lint"))
        .args(["--root", dir.to_str().unwrap(), "--json"])
        .output()
        .expect("daisy-lint binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "findings must exit 1; stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"rule\":\"D001\""), "{stdout}");
    assert!(stdout.contains("\"file\":\"crates/core/src/lib.rs\""), "{stdout}");
    assert!(stdout.contains("\"line\":8"), "{stdout}");

    // Fixing the seeded file flips the exit code back to 0.
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "//! Seeded-violation fixture crate, fixed.\n\
         #![forbid(unsafe_code)]\n\
         #![warn(missing_docs)]\n\
         use std::collections::BTreeMap;\n\
         /// Iterates an ordered map — clean.\n\
         pub fn f(m: &BTreeMap<u32, u32>) -> u32 {\n\
             m.values().sum()\n\
         }\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_daisy-lint"))
        .args(["--root", dir.to_str().unwrap(), "--json"])
        .output()
        .expect("daisy-lint binary runs");
    assert_eq!(out.status.code(), Some(0), "clean workspace must exit 0");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"errors\":0,\"warnings\":0"), "{stdout}");

    fs::remove_dir_all(&dir).ok();
}

/// The binary's human mode on the repo itself: exit 0 and a one-line
/// all-clear (this is exactly what CI runs, minus `--json`).
#[test]
fn binary_is_clean_on_the_repo_workspace() {
    let root = repo_root();
    let out = Command::new(env!("CARGO_BIN_EXE_daisy-lint"))
        .args(["--root", root.to_str().unwrap()])
        .output()
        .expect("daisy-lint binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 errors, 0 warnings"), "{stdout}");
}

/// The SARIF rendering's minimal shape, pinned for the CI upload step:
/// one run, the daisy-lint driver with the rule catalogue, and results
/// carrying ruleId / level / message / physical location.
#[test]
fn sarif_rendering_matches_the_minimal_shape() {
    use daisy_lint::{render_sarif, Finding};
    let findings = vec![
        Finding::new("M001", "crates/core/src/x.rs", 12, "unregistered \"metric\"".to_string()),
        Finding::new("H003", "src/lib.rs", 1, "over budget".to_string()),
    ];
    let sarif = render_sarif(&findings, 7);
    assert!(sarif.starts_with("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
    assert!(sarif.contains("\"version\":\"2.1.0\""));
    assert!(sarif.contains("\"name\":\"daisy-lint\""));
    // The driver advertises every catalogue rule exactly once.
    for r in daisy_lint::RULES {
        assert_eq!(sarif.matches(&format!("{{\"id\":\"{}\"", r.id)).count(), 1, "{}", r.id);
    }
    assert!(sarif.contains(
        "{\"ruleId\":\"M001\",\"level\":\"error\",\
         \"message\":{\"text\":\"unregistered \\\"metric\\\"\"},\
         \"locations\":[{\"physicalLocation\":{\
         \"artifactLocation\":{\"uri\":\"crates/core/src/x.rs\"},\
         \"region\":{\"startLine\":12}}}]}"
    ), "{sarif}");
    assert!(sarif.contains("\"ruleId\":\"H003\",\"level\":\"warning\""));
    assert!(sarif.trim_end().ends_with("}]}"), "one top-level object: {sarif}");
    // A clean report still produces a structurally complete log.
    let clean = render_sarif(&[], 7);
    assert!(clean.contains("\"results\":[]"), "{clean}");
}

/// A seeded registry violation in a scratch workspace: an unregistered
/// metric call plus a direct env read, caught by the workspace-level
/// rules through the real binary in SARIF mode (exit 1).
#[test]
fn seeded_registry_violations_fail_the_binary_in_sarif_mode() {
    let dir = std::env::temp_dir().join(format!("daisy-lint-sarif-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/telemetry/src")).unwrap();
    fs::create_dir_all(dir.join("crates/core/src")).unwrap();
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/core\"]\n").unwrap();
    // A schema with a metric registry, so M001 has a vocabulary to
    // check against; a knobs module, so K001 is armed.
    fs::write(
        dir.join("crates/telemetry/src/schema.rs"),
        "//! Fixture schema.\n\
         /// Kinds.\n\
         pub enum MetricKind { Counter }\n\
         /// Registry.\n\
         pub const METRICS: &[(&str, MetricKind)] = &[(\"pool.jobs\", MetricKind::Counter)];\n",
    )
    .unwrap();
    fs::write(
        dir.join("crates/telemetry/src/knobs.rs"),
        "//! Fixture knob registry (empty).\npub const KNOBS: &[()] = &[];\n",
    )
    .unwrap();
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "//! Seeded registry violations.\n\
         #![forbid(unsafe_code)]\n\
         #![warn(missing_docs)]\n\
         /// Emits an unregistered metric and reads an unregistered knob.\n\
         pub fn f() {\n\
             metrics::counter(\"pool.surprise\").add(1);\n\
             let _ = std::env::var(\"DAISY_ROGUE\");\n\
         }\n\
         /// Emits the registered metric so it counts as emitted.\n\
         pub fn g() {\n\
             metrics::counter(\"pool.jobs\").add(1);\n\
         }\n",
    )
    .unwrap();
    // Document the registered metric so only the seeded violations fire.
    fs::create_dir_all(dir.join("docs")).unwrap();
    fs::write(dir.join("docs/OBSERVABILITY.md"), "`pool.jobs` is documented.\n").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_daisy-lint"))
        .args(["--root", dir.to_str().unwrap(), "--format", "sarif"])
        .output()
        .expect("daisy-lint binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "findings exit 1 in sarif mode:\n{stdout}");
    assert!(stdout.contains("\"ruleId\":\"M001\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\":\"K001\""), "{stdout}");
    assert!(stdout.contains("pool.surprise"), "{stdout}");
    assert!(stdout.contains("DAISY_ROGUE"), "{stdout}");

    fs::remove_dir_all(&dir).ok();
}
