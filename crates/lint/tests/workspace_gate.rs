//! The linter against real workspaces: the repo's own sources must be
//! clean (this is the CI gate), the JSON rendering must match its
//! documented shape, and a seeded violation in a scratch workspace must
//! fail the binary with a finding that names the rule, file, and line.

use daisy_lint::{lint_workspace, render_json, workspace};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the lint crate lives inside the daisy workspace")
}

/// The tentpole acceptance check: `daisy lint` has nothing to say about
/// the workspace that ships it. Every historical violation is either
/// fixed or carries an explicit `daisy-lint: allow` with a reason.
#[test]
fn the_workspace_lints_clean() {
    let report = lint_workspace(&repo_root()).expect("workspace is readable");
    assert!(
        report.is_clean(),
        "the workspace must lint clean; found:\n{}",
        daisy_lint::render_human(&report.findings, report.files_scanned)
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}); did workspace discovery break?",
        report.files_scanned
    );
}

/// `--json` output shape, pinned: tool/version header, a summary with
/// counts, and per-finding rule/severity/file/line/message keys.
#[test]
fn json_rendering_matches_the_documented_shape() {
    use daisy_lint::Finding;
    let findings = vec![
        Finding::new("D001", "crates/core/src/x.rs", 12, "it \"iterates\"".to_string()),
        Finding::new("H003", "src/lib.rs", 1, "over budget".to_string()),
    ];
    let json = render_json(&findings, 7);
    assert!(json.starts_with("{\"tool\":\"daisy-lint\",\"version\":1,"));
    assert!(json.contains("\"summary\":{\"files\":7,\"errors\":1,\"warnings\":1}"));
    assert!(json.contains(
        "{\"rule\":\"D001\",\"severity\":\"error\",\"file\":\"crates/core/src/x.rs\",\
         \"line\":12,\"message\":\"it \\\"iterates\\\"\"}"
    ));
    assert!(json.contains("\"rule\":\"H003\",\"severity\":\"warning\""));
    // Exactly one top-level object, no trailing junk.
    assert!(json.trim_end().ends_with("]}"));
}

/// Builds a minimal scratch workspace with one seeded D001 violation
/// (a `for` loop over a HashMap in crates/core).
fn write_seeded_workspace(dir: &Path) {
    fs::create_dir_all(dir.join("crates/core/src")).unwrap();
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/core\"]\n").unwrap();
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "//! Seeded-violation fixture crate.\n\
         #![forbid(unsafe_code)]\n\
         #![warn(missing_docs)]\n\
         use std::collections::HashMap;\n\
         /// Iterates a hash map — the seeded determinism violation.\n\
         pub fn f(m: &HashMap<u32, u32>) -> u32 {\n\
             let mut total = 0;\n\
             for (_, v) in m {\n\
                 total += v;\n\
             }\n\
             total\n\
         }\n",
    )
    .unwrap();
}

/// End-to-end through the real binary: a seeded violation makes
/// `daisy-lint --json` exit non-zero and report rule, file, and line.
#[test]
fn seeded_violation_fails_the_binary_with_rule_file_and_line() {
    let dir = std::env::temp_dir().join(format!("daisy-lint-seeded-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    write_seeded_workspace(&dir);

    let out = Command::new(env!("CARGO_BIN_EXE_daisy-lint"))
        .args(["--root", dir.to_str().unwrap(), "--json"])
        .output()
        .expect("daisy-lint binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "findings must exit 1; stdout:\n{stdout}"
    );
    assert!(stdout.contains("\"rule\":\"D001\""), "{stdout}");
    assert!(stdout.contains("\"file\":\"crates/core/src/lib.rs\""), "{stdout}");
    assert!(stdout.contains("\"line\":8"), "{stdout}");

    // Fixing the seeded file flips the exit code back to 0.
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        "//! Seeded-violation fixture crate, fixed.\n\
         #![forbid(unsafe_code)]\n\
         #![warn(missing_docs)]\n\
         use std::collections::BTreeMap;\n\
         /// Iterates an ordered map — clean.\n\
         pub fn f(m: &BTreeMap<u32, u32>) -> u32 {\n\
             m.values().sum()\n\
         }\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_daisy-lint"))
        .args(["--root", dir.to_str().unwrap(), "--json"])
        .output()
        .expect("daisy-lint binary runs");
    assert_eq!(out.status.code(), Some(0), "clean workspace must exit 0");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"errors\":0,\"warnings\":0"), "{stdout}");

    fs::remove_dir_all(&dir).ok();
}

/// The binary's human mode on the repo itself: exit 0 and a one-line
/// all-clear (this is exactly what CI runs, minus `--json`).
#[test]
fn binary_is_clean_on_the_repo_workspace() {
    let root = repo_root();
    let out = Command::new(env!("CARGO_BIN_EXE_daisy-lint"))
        .args(["--root", root.to_str().unwrap()])
        .output()
        .expect("daisy-lint binary runs");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(stdout.contains("0 errors, 0 warnings"), "{stdout}");
}
