//! One bad and one good fixture per rule: the bad snippet must produce
//! exactly the expected finding, the good twin must lint clean. This is
//! the rule catalogue's executable specification — a rule change that
//! widens or narrows a pattern shows up here first.

use daisy_lint::workspace::{FileKind, SourceFile};
use daisy_lint::{lint_files, schema, Finding, LintContext};
use std::path::PathBuf;

/// The event vocabulary the fixtures lint against: one documented
/// constant, so S-rules can see both a known and an unknown name.
const SCHEMA_FIXTURE: &str = r#"
/// Start of a training run.
///
/// Fields: `epoch`, `step`.
pub const TRAIN_START: &str = "train_start";

/// The profiler phase vocabulary (S004).
///
/// Fields: none (a vocabulary, not an event).
pub const PHASES: &[&str] = &["fit", "epoch"];
"#;

fn file(rel: &str, kind: FileKind, src: &str) -> SourceFile {
    let crate_key = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("daisy")
        .to_string();
    SourceFile {
        path: PathBuf::new(),
        rel: rel.to_string(),
        crate_key,
        kind,
        src: src.to_string(),
    }
}

/// The context every fixture lints against: the event vocabulary above
/// plus empty metric/knob registries and empty docs (the registry
/// rules are exercised by their own fixtures with explicit contexts).
fn fixture_ctx() -> LintContext {
    LintContext {
        events: schema::parse(SCHEMA_FIXTURE),
        ..LintContext::default()
    }
}

/// Lints a single fixture file and returns its findings.
fn lint_one(rel: &str, kind: FileKind, src: &str) -> Vec<Finding> {
    lint_files(&[file(rel, kind, src)], &fixture_ctx()).findings
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ----- D001: hash-ordered iteration -----

#[test]
fn d001_flags_hashmap_iteration() {
    let bad = "
use std::collections::HashMap;
fn f() {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    counts.insert(1, 2);
    for (k, v) in &counts {
        println!(\"{k} {v}\");
    }
    let _ = counts.iter().count();
}
";
    let findings = lint_one("crates/core/src/x.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["D001", "D001"]);
    assert_eq!(findings[0].line, 6, "the `for .. in &counts` loop");
    assert_eq!(findings[1].line, 9, "the `.iter()` call");
    assert!(findings[0].message.contains("hash-seed order"));
}

#[test]
fn d001_allows_btreemap_iteration_and_hash_membership() {
    let good = "
use std::collections::{BTreeMap, HashSet};
fn f() {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    counts.insert(1, 2);
    for (k, v) in &counts {
        println!(\"{k} {v}\");
    }
    // Membership-only HashSet use is order-independent and fine.
    let seen: HashSet<u32> = HashSet::new();
    assert!(!seen.contains(&3), \"seen {seen:?}\");
}
";
    assert!(lint_one("crates/core/src/x.rs", FileKind::Src, good).is_empty());
}

// ----- D002: wall-clock reads -----

#[test]
fn d002_flags_instant_outside_telemetry() {
    let bad = "
use std::time::Instant;
fn f() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
";
    let findings = lint_one("crates/core/src/x.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["D002", "D002"]);
    assert!(findings[0].message.contains("wall clock"));
}

#[test]
fn d002_exempts_the_telemetry_plane() {
    let same_code = "
use std::time::Instant;
fn f() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
";
    assert!(lint_one("crates/telemetry/src/x.rs", FileKind::Src, same_code).is_empty());
}

// ----- D003: thread spawning -----

#[test]
fn d003_flags_thread_spawn_outside_the_pool() {
    let bad = "
fn f() {
    std::thread::spawn(|| {});
}
";
    let findings = lint_one("crates/core/src/x.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["D003"]);
    assert!(findings[0].message.contains("tensor::pool"));
}

#[test]
fn d003_exempts_the_pool_itself() {
    let same_code = "
fn f() {
    std::thread::Builder::new().spawn(|| {}).ok();
}
";
    assert!(lint_one("crates/tensor/src/pool.rs", FileKind::Src, same_code).is_empty());
}

// ----- D004: RNG construction -----

#[test]
fn d004_flags_entropy_seeded_randomness() {
    let bad = "
use std::collections::hash_map::RandomState;
fn f() -> RandomState {
    RandomState::new()
}
";
    let findings = lint_one("crates/core/src/x.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["D004", "D004", "D004"]);
    assert!(findings[0].message.contains("seeded"));
}

#[test]
fn d004_allows_seeded_rng_and_exempts_rng_rs() {
    let good = "
fn f() {
    let mut rng = Rng::seed_from_u64(7);
    let _ = rng.next_u64();
}
";
    assert!(lint_one("crates/core/src/x.rs", FileKind::Src, good).is_empty());
    let rng_impl = "
fn f() {
    // rng.rs may talk about DefaultHasher in its seeding docs/impl.
    use std::collections::hash_map::DefaultHasher;
    let _ = DefaultHasher::new();
}
";
    assert!(lint_one("crates/tensor/src/rng.rs", FileKind::Src, rng_impl).is_empty());
}

// ----- S001: event names must be in the vocabulary -----

#[test]
fn s001_flags_unknown_event_names_and_consts() {
    let bad = "
fn f(rec: &Recorder) {
    rec.emit(\"bogus_event\", &[]);
    rec.emit(schema::NOPE, &[]);
}
";
    let findings = lint_one("crates/core/src/x.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["S001", "S001"]);
    assert!(findings[0].message.contains("bogus_event"));
    assert!(findings[1].message.contains("NOPE"));
}

#[test]
fn s001_accepts_vocabulary_names_and_skips_tests() {
    let good = "
fn f(rec: &Recorder) {
    rec.emit(\"train_start\", &[]);
    rec.emit(schema::TRAIN_START, &[]);
}

#[cfg(test)]
mod tests {
    fn g(rec: &Recorder) {
        rec.emit(\"test_only_event\", &[]);
    }
}
";
    assert!(lint_one("crates/core/src/x.rs", FileKind::Src, good).is_empty());
}

// ----- S002: schema constants document their fields -----

#[test]
fn s002_flags_schema_consts_without_a_fields_contract() {
    let bad = "
/// Start of a training run, but no field list.
pub const TRAIN_START: &str = \"train_start\";
";
    let findings = lint_one("crates/telemetry/src/schema.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["S002"]);
    assert!(findings[0].message.contains("TRAIN_START"));
}

#[test]
fn s002_accepts_documented_schema_consts() {
    let findings = lint_one("crates/telemetry/src/schema.rs", FileKind::Src, SCHEMA_FIXTURE);
    assert!(findings.is_empty(), "{findings:?}");
}

// ----- S003: no wall-clock fields on the deterministic plane -----

#[test]
fn s003_flags_wall_clock_field_names() {
    let bad = "
fn f(rec: &Recorder) {
    rec.emit(\"train_start\", &[field(\"elapsed_ms\", 3.0)]);
}
";
    let findings = lint_one("crates/core/src/x.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["S003"]);
    assert!(findings[0].message.contains("elapsed_ms"));
}

#[test]
fn s003_accepts_logical_time_fields() {
    let good = "
fn f(rec: &Recorder) {
    rec.emit(\"train_start\", &[field(\"epoch\", 3), field(\"step\", 40)]);
}
";
    assert!(lint_one("crates/core/src/x.rs", FileKind::Src, good).is_empty());
}

// ----- S004: profiler phase names must be in PHASES -----

#[test]
fn s004_flags_unknown_phase_literals() {
    let bad = "
fn f() {
    daisy_telemetry::phase_scope!(\"warp_drive\");
    let _guard = daisy_telemetry::profile::scope(\"bogus_phase\");
}
";
    let findings = lint_one("crates/core/src/x.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["S004", "S004"]);
    assert!(findings[0].message.contains("warp_drive"));
    assert!(findings[1].message.contains("bogus_phase"));
}

#[test]
fn s004_accepts_vocabulary_phases_and_skips_tests() {
    let good = "
fn f() {
    daisy_telemetry::phase_scope!(\"fit\");
    let _guard = daisy_telemetry::profile::scope(\"epoch\");
}

#[cfg(test)]
mod tests {
    fn g() {
        daisy_telemetry::phase_scope!(\"test_only_phase\");
    }
}
";
    assert!(lint_one("crates/core/src/x.rs", FileKind::Src, good).is_empty());
}

// ----- H001 / H002: crate-root attributes -----

#[test]
fn h001_h002_flag_a_bare_crate_root() {
    let bad = "//! A crate with no hygiene attributes.\npub fn f() {}\n";
    let findings = lint_one("crates/foo/src/lib.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["H001", "H002"]);
}

#[test]
fn h001_h002_accept_forbid_or_deny_plus_warn() {
    let good = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
    assert!(lint_one("crates/foo/src/lib.rs", FileKind::Src, good).is_empty());
    // `deny(unsafe_code)` (tensor's pool carve-out) also satisfies H001.
    let deny = "//! Docs.\n#![deny(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
    assert!(lint_one("crates/foo/src/lib.rs", FileKind::Src, deny).is_empty());
}

// ----- H003: unwrap/expect budget -----

#[test]
fn h003_flags_a_crate_over_its_budget() {
    // `datasets` has a budget of zero.
    let bad = "
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
    let findings = lint_one("crates/datasets/src/gen.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["H003"]);
    assert_eq!(findings[0].file, "crates/datasets/src/lib.rs");
    assert!(findings[0].message.contains("over its budget of 0"));
}

#[test]
fn h003_flags_a_crate_with_no_baseline_and_skips_tests() {
    let bad = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let findings = lint_one("crates/mystery/src/gen.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["H003"]);
    assert!(findings[0].message.contains("no unwrap()/expect() budget"));

    let test_only = "
pub fn f() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
";
    assert!(lint_one("crates/datasets/src/gen.rs", FileKind::Src, test_only).is_empty());
}

// ----- H004: dimension-carrying kernel panics -----

#[test]
fn h004_flags_bare_kernel_asserts() {
    let bad = "
pub fn matmul(a: &Tensor, b: &Tensor) {
    assert_eq!(a.cols(), b.rows(), \"inner dimensions differ\");
}
";
    let findings = lint_one("crates/tensor/src/linalg.rs", FileKind::Src, bad);
    assert_eq!(rules_of(&findings), ["H004"]);
    assert!(findings[0].message.contains("dimension-carrying"));
}

#[test]
fn h004_accepts_shape_interpolating_messages_and_is_kernel_scoped() {
    let good = "
pub fn matmul(a: &Tensor, b: &Tensor) {
    assert_eq!(a.cols(), b.rows(), \"matmul {:?} x {:?}\", a.shape(), b.shape());
}
";
    assert!(lint_one("crates/tensor/src/linalg.rs", FileKind::Src, good).is_empty());
    // The same bare assert outside the kernel files is not H004's business.
    let elsewhere = "
pub fn f(n: usize) {
    assert!(n > 0, \"need at least one row\");
}
";
    assert!(lint_one("crates/core/src/x.rs", FileKind::Src, elsewhere).is_empty());
}

// ----- Suppressions -----

#[test]
fn line_suppression_silences_exactly_its_rule_and_line() {
    let suppressed = "
// daisy-lint: allow(D002) -- fixture
use std::time::Instant;
fn f() {
    let _ = Instant::now(); // daisy-lint: allow(D002)
}
";
    assert!(lint_one("crates/core/src/x.rs", FileKind::Src, suppressed).is_empty());
    // The wrong rule id does not suppress.
    let wrong_rule = "
// daisy-lint: allow(D001)
use std::time::Instant;
";
    let findings = lint_one("crates/core/src/x.rs", FileKind::Src, wrong_rule);
    assert_eq!(rules_of(&findings), ["D002"]);
}

#[test]
fn file_scoped_rules_accept_an_allow_anywhere_in_the_file() {
    let src = "//! Deliberately attribute-free.\n\npub fn f() {}\n\n// daisy-lint: allow(H001, H002)\n";
    assert!(lint_one("crates/foo/src/lib.rs", FileKind::Src, src).is_empty());
}

// ----- Cross-file behaviour -----

#[test]
fn findings_are_sorted_and_deduped_across_files() {
    let a = file(
        "crates/core/src/b.rs",
        FileKind::Src,
        "use std::time::Instant;\n",
    );
    let b = file(
        "crates/core/src/a.rs",
        FileKind::Src,
        "fn f() { std::thread::spawn(|| {}); }\n",
    );
    let report = lint_files(&[a, b], &fixture_ctx());
    let got: Vec<(&str, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.rule))
        .collect();
    assert_eq!(
        got,
        [
            ("crates/core/src/a.rs", "D003"),
            ("crates/core/src/b.rs", "D002"),
        ],
        "sorted by file, one finding per (file, line, rule)"
    );
    assert_eq!(report.files_scanned, 2);
}

// ----- M001: metric registry -----

/// A metric registry fixture with one metric of each kind.
const METRICS_FIXTURE: &str = r#"
pub enum MetricKind { Counter, Gauge, Histogram }
pub const METRICS: &[(&str, MetricKind)] = &[
    ("pool.jobs", MetricKind::Counter),
    ("train.norm", MetricKind::Gauge),
];
"#;

fn metrics_ctx(docs: &str) -> LintContext {
    LintContext {
        events: schema::parse(SCHEMA_FIXTURE),
        metrics: schema::parse_metrics(METRICS_FIXTURE),
        docs: docs.to_string(),
        ..LintContext::default()
    }
}

#[test]
fn m001_flags_unregistered_and_kind_mismatched_metrics() {
    let bad = r#"
fn f() {
    metrics::counter("pool.jobs").add(1);
    metrics::counter("pool.surprise").add(1);
    metrics::gauge("pool.jobs").set(2);
}
"#;
    let findings = lint_files(
        &[file("crates/core/src/x.rs", FileKind::Src, bad)],
        &metrics_ctx("`pool.jobs` and `train.norm` are documented; train.norm too"),
    )
    .findings;
    // "train.norm" is registered but never emitted by the fixture file,
    // so that finding rides along at the registry's location.
    let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert!(got.contains(&("M001", 4)), "unregistered name: {findings:?}");
    assert!(got.contains(&("M001", 5)), "kind mismatch: {findings:?}");
    assert!(
        findings.iter().any(|f| f.message.contains("never emitted")),
        "train.norm is unemitted: {findings:?}"
    );
    assert!(findings.iter().all(|f| f.rule == "M001"));
    assert!(findings[0].message.contains("pool.surprise") || findings.len() == 3);
}

#[test]
fn m001_accepts_registered_emitted_documented_metrics() {
    let good = r#"
fn f() {
    metrics::counter("pool.jobs").add(1);
    metrics::gauge("train.norm").set(0.5);
}
"#;
    let findings = lint_files(
        &[file("crates/core/src/x.rs", FileKind::Src, good)],
        &metrics_ctx("Counters: `pool.jobs`. Gauges: `train.norm`."),
    )
    .findings;
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn m001_flags_undocumented_registry_entries() {
    let good_calls = r#"
fn f() {
    metrics::counter("pool.jobs").add(1);
    metrics::gauge("train.norm").set(0.5);
}
"#;
    let findings = lint_files(
        &[file("crates/core/src/x.rs", FileKind::Src, good_calls)],
        &metrics_ctx("only `pool.jobs` is documented"),
    )
    .findings;
    assert_eq!(rules_of(&findings), ["M001"]);
    assert!(findings[0].message.contains("train.norm"));
    assert!(findings[0].message.contains("not documented"));
    assert_eq!(findings[0].file, "crates/telemetry/src/schema.rs");
}

// ----- K001: environment-knob registry -----

const KNOBS_FIXTURE: &str = r#"
pub const KNOBS: &[Knob] = &[
    Knob { name: "DAISY_TRACE", default: "-", owner: "telemetry", doc: "sink" },
];
"#;

fn knobs_ctx(docs: &str) -> LintContext {
    LintContext {
        events: schema::parse(SCHEMA_FIXTURE),
        knobs: schema::parse_knobs(KNOBS_FIXTURE),
        docs: docs.to_string(),
        ..LintContext::default()
    }
}

#[test]
fn k001_flags_direct_env_reads_and_unregistered_mentions() {
    let bad = r#"
fn f() {
    let _ = std::env::var("DAISY_TRACE");
    eprintln!("try DAISY_TURBO=1 for speed");
}
"#;
    let findings = lint_files(
        &[file("crates/core/src/x.rs", FileKind::Src, bad)],
        &knobs_ctx("`DAISY_TRACE` is documented"),
    )
    .findings;
    let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert!(got.contains(&("K001", 3)), "direct env read: {findings:?}");
    assert!(got.contains(&("K001", 4)), "unregistered mention: {findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("bypasses the knob registry")));
    assert!(findings.iter().any(|f| f.message.contains("DAISY_TURBO")));
}

#[test]
fn k001_accepts_registry_reads_and_skips_tests() {
    let good = r#"
fn f() {
    let _ = telemetry::knobs::raw("DAISY_TRACE");
}
#[cfg(test)]
mod tests {
    fn t() { let _ = std::env::var("DAISY_TRACE"); }
}
"#;
    let findings = lint_files(
        &[file("crates/core/src/x.rs", FileKind::Src, good)],
        &knobs_ctx("`DAISY_TRACE` is documented"),
    )
    .findings;
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn k001_flags_undocumented_registered_knobs() {
    let findings = lint_files(
        &[file("crates/core/src/x.rs", FileKind::Src, "pub fn f() {}\n")],
        &knobs_ctx("no knobs documented here"),
    )
    .findings;
    assert_eq!(rules_of(&findings), ["K001"]);
    assert!(findings[0].message.contains("DAISY_TRACE"));
    assert_eq!(findings[0].file, "crates/telemetry/src/knobs.rs");
}

// ----- W001: wire-magic registry -----

#[test]
fn w001_flags_magics_declared_outside_wire_and_duplicates() {
    let wire = r#"
pub const CHUNK: &[u8; 8] = b"DAISYCH1";
const CHUNK_AGAIN: &[u8; 8] = b"DAISYCH1";
"#;
    let rogue = r#"
const MY_MAGIC: &[u8; 8] = b"DAISYXX1";
"#;
    let findings = lint_files(
        &[
            file("crates/wire/src/magic.rs", FileKind::Src, wire),
            file("crates/data/src/x.rs", FileKind::Src, rogue),
        ],
        &fixture_ctx(),
    )
    .findings;
    assert_eq!(rules_of(&findings), ["W001", "W001"]);
    let outside = findings
        .iter()
        .find(|f| f.message.contains("declared outside daisy-wire"))
        .expect("outside-wire finding");
    assert_eq!((outside.file.as_str(), outside.line), ("crates/data/src/x.rs", 2));
    let dup = findings
        .iter()
        .find(|f| f.message.contains("already declared as `CHUNK`"))
        .expect("duplicate finding");
    assert_eq!((dup.file.as_str(), dup.line), ("crates/wire/src/magic.rs", 3));
}

#[test]
fn w001_flags_inlined_magic_values() {
    let wire = r#"
pub const CHUNK: &[u8; 8] = b"DAISYCH1";
"#;
    let inline_use = r#"
fn f(buf: &mut Vec<u8>) {
    buf.extend_from_slice(b"DAISYCH1");
}
"#;
    let findings = lint_files(
        &[
            file("crates/wire/src/magic.rs", FileKind::Src, wire),
            file("crates/data/src/x.rs", FileKind::Src, inline_use),
        ],
        &fixture_ctx(),
    )
    .findings;
    assert_eq!(rules_of(&findings), ["W001"]);
    assert!(findings[0].message.contains("inlines a declared wire magic"));
    assert_eq!(findings[0].file, "crates/data/src/x.rs");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn w001_accepts_reexports_and_test_region_inlines() {
    let wire = r#"
pub const CHUNK: &[u8; 8] = b"DAISYCH1";
"#;
    let good = r#"
pub use daisy_wire::magic::CHUNK as CHUNK_MAGIC;
fn f(buf: &mut Vec<u8>) {
    buf.extend_from_slice(CHUNK_MAGIC);
}
#[cfg(test)]
mod tests {
    fn t() { assert_eq!(&b"DAISYCH1"[..], &super::CHUNK_MAGIC[..]); }
}
"#;
    let findings = lint_files(
        &[
            file("crates/wire/src/magic.rs", FileKind::Src, wire),
            file("crates/data/src/x.rs", FileKind::Src, good),
        ],
        &fixture_ctx(),
    )
    .findings;
    assert!(findings.is_empty(), "{findings:?}");
}

// ----- Cross-crate resolution (two-pass upgrades of S001/S004) -----

#[test]
fn s001_resolves_constants_across_crates() {
    let decl = r#"
pub const ROGUE_EVENT: &str = "not_in_schema";
pub const GOOD_EVENT: &str = "train_start";
"#;
    let caller = r#"
fn f(rec: &Recorder) {
    rec.record(Event::new(other_crate::ROGUE_EVENT, vec![]));
    rec.record(Event::new(other_crate::GOOD_EVENT, vec![]));
}
"#;
    let findings = lint_files(
        &[
            file("crates/data/src/consts.rs", FileKind::Src, decl),
            file("crates/core/src/x.rs", FileKind::Src, caller),
        ],
        &fixture_ctx(),
    )
    .findings;
    assert_eq!(rules_of(&findings), ["S001"]);
    assert_eq!(findings[0].file, "crates/core/src/x.rs");
    assert!(findings[0].message.contains("not_in_schema"), "{findings:?}");
}

#[test]
fn s004_resolves_phase_constants_across_crates() {
    let decl = r#"
pub const ROGUE_PHASE: &str = "warp_drive";
pub const GOOD_PHASE: &str = "fit";
"#;
    let caller = r#"
fn f() {
    let _a = profile::scope(ROGUE_PHASE);
    let _b = profile::scope(GOOD_PHASE);
}
"#;
    let findings = lint_files(
        &[
            file("crates/data/src/consts.rs", FileKind::Src, decl),
            file("crates/core/src/x.rs", FileKind::Src, caller),
        ],
        &fixture_ctx(),
    )
    .findings;
    assert_eq!(rules_of(&findings), ["S004"]);
    assert!(findings[0].message.contains("warp_drive"), "{findings:?}");
}

#[test]
fn ambiguous_cross_crate_constants_are_not_resolved() {
    // Two crates bind the same ident to different strings: resolution
    // must refuse to guess, so neither call site is flagged.
    let a = r#"pub const EV: &str = "not_in_schema";"#;
    let b = r#"pub const EV: &str = "train_start";"#;
    let caller = r#"
fn f(rec: &Recorder) {
    rec.record(Event::new(EV, vec![]));
}
"#;
    let findings = lint_files(
        &[
            file("crates/data/src/a.rs", FileKind::Src, a),
            file("crates/serve/src/b.rs", FileKind::Src, b),
            file("crates/core/src/x.rs", FileKind::Src, caller),
        ],
        &fixture_ctx(),
    )
    .findings;
    assert!(findings.is_empty(), "{findings:?}");
}
