//! Shared experiment plumbing: scaling, dataset preparation, fitted
//! synthesizer construction, per-classifier utility sweeps, and
//! plain-text table formatting.

use crate::journal::SweepJournal;
use daisy_core::{
    CheckpointPlan, DiscriminatorKind, FaultPlan, GuardConfig, NetworkKind, Synthesizer,
    SynthesizerConfig, TableSynthesizer, TrainConfig, TrainError, TrainOutcome,
};
use daisy_data::{Table, TransformConfig};
use daisy_datasets::TableSpec;
use daisy_eval::{classification_utility, classifier_zoo};
use daisy_telemetry::{field, schema};
use daisy_tensor::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// Experiment scale knobs. Quick mode keeps every experiment's *shape*
/// (datasets, design points, classifiers) while shrinking rows and
/// iterations so the full suite finishes on a laptop CPU; `DAISY_FULL=1`
/// multiplies the budgets.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Rows drawn from each dataset spec.
    pub rows: usize,
    /// GAN generator iterations.
    pub iterations: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Hidden width for generators/discriminators.
    pub hidden: usize,
    /// VAE iterations.
    pub vae_iterations: usize,
    /// AQP workload size.
    pub n_queries: usize,
    /// Privacy-metric sample counts.
    pub privacy_samples: usize,
    /// Iterations for the epoch-robustness sweeps (Figures 4, 16–18),
    /// which train 6 settings × 10 epochs each and dominate wall-clock.
    pub sweep_iterations: usize,
}

/// Reads the scale from the environment. `DAISY_ROWS` and
/// `DAISY_ITERS` override the row/iteration budgets of either mode.
pub fn scale() -> Scale {
    let mut s = base_scale();
    if let Some(rows) = env_usize("DAISY_ROWS") {
        s.rows = rows;
    }
    if let Some(iters) = env_usize("DAISY_ITERS") {
        s.iterations = iters;
        s.sweep_iterations = iters.min(s.sweep_iterations);
    }
    s
}

fn env_usize(name: &str) -> Option<usize> {
    daisy_telemetry::knobs::raw(name)?.parse().ok()
}

fn base_scale() -> Scale {
    if daisy_telemetry::knobs::flag("DAISY_FULL") {
        Scale {
            rows: 12_000,
            iterations: 2_000,
            batch: 128,
            hidden: 128,
            vae_iterations: 4_000,
            n_queries: 1_000,
            privacy_samples: 3_000,
            sweep_iterations: 1_000,
        }
    } else {
        Scale {
            rows: 1_600,
            iterations: 400,
            batch: 48,
            hidden: 48,
            vae_iterations: 800,
            n_queries: 120,
            privacy_samples: 300,
            sweep_iterations: 200,
        }
    }
}

/// Materializes a dataset spec at the current scale and splits 4:1:1.
///
/// Skewed datasets are upsampled so the rarest label keeps ≥ 30
/// expected training rows — otherwise the paper's rare-label F1 metric
/// degenerates to 0 for every synthesizer and the comparison is
/// vacuous.
pub fn prepare(spec: &TableSpec, seed: u64) -> (Table, Table, Table) {
    let s = scale();
    let mut rows = s.rows;
    if let Some(probs) = &spec.label_probs {
        let p_min = probs.iter().copied().fold(f64::INFINITY, f64::min);
        if p_min > 0.0 {
            let needed = (30.0 / p_min * 1.5).ceil() as usize; // 1.5x for the 4:1:1 split
            rows = rows.max(needed).min(4 * s.rows);
        }
    }
    let table = spec.generate(rows.min(spec.default_rows), seed);
    let mut rng = Rng::seed_from_u64(seed ^ 0x517);
    table.split_train_valid_test(&mut rng)
}

/// Splits an already materialized table 4:1:1.
pub fn split(table: &Table, seed: u64) -> (Table, Table, Table) {
    let mut rng = Rng::seed_from_u64(seed ^ 0x517);
    table.split_train_valid_test(&mut rng)
}

/// A scaled GAN configuration for the given design point.
pub fn gan_config(
    network: NetworkKind,
    transform: TransformConfig,
    mut train: TrainConfig,
    seed: u64,
) -> SynthesizerConfig {
    let s = scale();
    train.iterations = s.iterations;
    train.batch_size = s.batch;
    let mut cfg = SynthesizerConfig::new(network, train);
    cfg.transform = transform;
    cfg.g_hidden = match network {
        NetworkKind::Lstm => vec![s.hidden, s.hidden / 2],
        _ => vec![s.hidden, s.hidden],
    };
    cfg.d_hidden = vec![s.hidden, s.hidden / 2];
    cfg.noise_dim = 24;
    cfg.cnn_channels = 8;
    cfg.seed = seed;
    cfg
}

/// Extra attempts (each with a fresh seed) a benchmark cell gets before
/// it is declared failed.
pub const CELL_RETRIES: usize = 2;

/// Outcome of one isolated benchmark cell: the synthetic table if any
/// attempt succeeded, plus a record of how it got there.
pub struct CellOutcome {
    /// The synthesized table, when some attempt succeeded.
    pub synthetic: Option<Table>,
    /// Total attempts spent (1 when the first try succeeded).
    pub attempts: usize,
    /// One message per failed attempt (training error or caught panic).
    pub failures: Vec<String>,
    /// The resilience report of the winning attempt.
    pub outcome: Option<TrainOutcome>,
    /// True when training stopped at a [`CheckpointPlan`] kill point
    /// (standing in for a crash). Interrupted cells are not retried —
    /// a rerun resumes them from their checkpoint instead.
    pub interrupted: bool,
}

impl CellOutcome {
    /// True when the winning run needed the resilience layer (rollback,
    /// escalation, or degradation) or more than one attempt.
    pub fn was_rocky(&self) -> bool {
        self.attempts > 1 || self.outcome.as_ref().is_some_and(|o| !o.is_clean())
    }
}

/// Fits one design-space cell in isolation: a training failure — a
/// typed [`daisy_core::TrainError`] or even a panic deeper in the
/// stack — is caught and retried with a fresh seed instead of taking
/// the whole experiment sweep down. A seed-dependent divergence (bad
/// initialization, unlucky minibatch order) rarely repeats under a
/// different seed.
pub fn run_cell(train: &Table, cfg: &SynthesizerConfig, seed: u64) -> CellOutcome {
    run_cell_checkpointed(train, cfg, seed, &CheckpointPlan::disabled())
}

/// [`run_cell`] with crash-safe checkpointing: when `ckpt` names a
/// path, training state is persisted at epoch boundaries and a rerun of
/// the same cell resumes from the latest valid checkpoint. Retried
/// attempts shift the model seed, which changes the configuration
/// fingerprint, so a retry never resumes the previous attempt's
/// checkpoint by accident.
///
/// A deterministic kill ([`CheckpointPlan::kill_at`], standing in for a
/// real crash) stops the cell immediately — no retries, no `cell_end`
/// event, exactly like a process that died mid-cell.
pub fn run_cell_checkpointed(
    train: &Table,
    cfg: &SynthesizerConfig,
    seed: u64,
    ckpt: &CheckpointPlan,
) -> CellOutcome {
    let telemetry = daisy_telemetry::enabled();
    let cell_label = format!("{}/{}", cfg.network.name(), cfg.train.name());
    if telemetry {
        daisy_telemetry::emit(
            schema::CELL_START,
            vec![field("cell", cell_label.as_str()), field("seed", seed)],
        );
    }
    let finish = |attempts: usize, ok: bool, rocky: bool| {
        if telemetry {
            daisy_telemetry::emit(
                schema::CELL_END,
                vec![
                    field("cell", cell_label.as_str()),
                    field("attempts", attempts),
                    field("ok", ok),
                    field("rocky", rocky),
                ],
            );
        }
    };
    let mut failures = Vec::new();
    for attempt in 0..=CELL_RETRIES {
        // Decorrelate retries: shift both the model seed and the
        // generation seed by a fixed odd constant per attempt.
        let shift = (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut cfg = cfg.clone();
        cfg.seed = cfg.seed.wrapping_add(shift);
        let result = catch_unwind(AssertUnwindSafe(|| {
            Synthesizer::try_fit_checkpointed(
                train,
                &cfg,
                &GuardConfig::default(),
                &FaultPlan::none(),
                ckpt,
            )
            .map(|fitted| {
                let mut rng = Rng::seed_from_u64((seed ^ 0x9e37).wrapping_add(shift));
                let outcome = fitted.outcome().clone();
                (fitted.generate(train.n_rows(), &mut rng), outcome)
            })
        }));
        match result {
            Ok(Ok((synthetic, outcome))) => {
                let cell = CellOutcome {
                    synthetic: Some(synthetic),
                    attempts: attempt + 1,
                    failures,
                    outcome: Some(outcome),
                    interrupted: false,
                };
                finish(cell.attempts, true, cell.was_rocky());
                return cell;
            }
            Ok(Err(e @ TrainError::Interrupted { .. })) => {
                // A simulated crash: stop without retrying and without
                // a cell_end event, like a process killed mid-cell.
                failures.push(format!("attempt {}: {e}", attempt + 1));
                return CellOutcome {
                    synthetic: None,
                    attempts: attempt + 1,
                    failures,
                    outcome: None,
                    interrupted: true,
                };
            }
            Ok(Err(e)) => failures.push(format!("attempt {}: {e}", attempt + 1)),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                failures.push(format!("attempt {}: panic: {msg}", attempt + 1));
            }
        }
        if telemetry && attempt < CELL_RETRIES {
            daisy_telemetry::emit(
                schema::CELL_RETRY,
                vec![
                    field("cell", cell_label.as_str()),
                    field("attempt", attempt + 1),
                    field("error", failures.last().unwrap().as_str()),
                ],
            );
        }
    }
    finish(CELL_RETRIES + 1, false, true);
    CellOutcome {
        synthetic: None,
        attempts: CELL_RETRIES + 1,
        failures,
        outcome: None,
        interrupted: false,
    }
}

/// Result of one cell of a resumable sweep.
pub enum SweepCellResult {
    /// The journal already recorded this cell as done; it was skipped.
    Skipped,
    /// The cell ran (or resumed) in this process.
    Ran(CellOutcome),
}

/// Derives the per-cell checkpoint filename from its sweep id.
fn cell_checkpoint_name(id: &str) -> String {
    let sanitized: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    format!("{sanitized}.ckpt")
}

/// Runs a sweep of `(id, config)` cells through a crash-safe journal in
/// `dir`, so an interrupted sweep can be rerun without redoing finished
/// work:
///
/// - `dir/journal.txt` records each cell's `start`/`done`/`failed`
///   transition durably (see [`SweepJournal`]); cells the journal marks
///   done are skipped with a `cell_skipped` event.
/// - Each running cell checkpoints its training state to
///   `dir/<id>.ckpt`, so the cell that was in flight when the process
///   died resumes mid-training on the rerun.
/// - When an existing journal is found, a `sweep_resume` event reports
///   how many of the sweep's cells are already done.
///
/// `ckpt` supplies the checkpoint cadence and (in tests) the
/// deterministic kill / I/O-fault plan; its path is replaced per cell.
/// A cell that hits the kill point stops the sweep immediately — its
/// journal entry stays `start`, exactly as if the process had died —
/// and the partial results are returned.
pub fn run_sweep_resumable(
    train: &Table,
    cells: &[(String, SynthesizerConfig)],
    seed: u64,
    dir: &Path,
    ckpt: &CheckpointPlan,
) -> std::io::Result<Vec<(String, SweepCellResult)>> {
    std::fs::create_dir_all(dir)?;
    let mut journal = SweepJournal::open(dir.join("journal.txt"))?;
    let telemetry = daisy_telemetry::enabled();
    if telemetry && !journal.is_empty() {
        daisy_telemetry::emit(
            schema::SWEEP_RESUME,
            vec![
                field("done", journal.done_count()),
                field("total", cells.len()),
            ],
        );
    }
    let mut results = Vec::new();
    for (id, cfg) in cells {
        if journal.is_done(id) {
            if telemetry {
                daisy_telemetry::emit(schema::CELL_SKIPPED, vec![field("cell", id.as_str())]);
            }
            results.push((id.clone(), SweepCellResult::Skipped));
            continue;
        }
        journal.record_start(id)?;
        let mut cell_plan = ckpt.clone();
        cell_plan.path = Some(dir.join(cell_checkpoint_name(id)));
        let cell = run_cell_checkpointed(train, cfg, seed, &cell_plan);
        if cell.interrupted {
            results.push((id.clone(), SweepCellResult::Ran(cell)));
            return Ok(results);
        }
        if cell.synthetic.is_some() {
            journal.record_done(id)?;
        } else {
            journal.record_failed(id)?;
        }
        results.push((id.clone(), SweepCellResult::Ran(cell)));
    }
    Ok(results)
}

/// Fits a GAN at a design point and synthesizes a table the size of the
/// training split. Runs through [`run_cell`], so a flaky cell retries
/// with fresh seeds before giving up; only total failure aborts the
/// experiment.
pub fn fit_and_generate(train: &Table, cfg: &SynthesizerConfig, seed: u64) -> Table {
    let cell = run_cell(train, cfg, seed);
    if cell.was_rocky() {
        for f in &cell.failures {
            eprintln!("  [cell] {f}");
        }
        if let Some(o) = cell.outcome.as_ref().filter(|o| !o.is_clean()) {
            eprintln!("  [cell] recovered: {}", o.summary());
        }
    }
    cell.synthetic.unwrap_or_else(|| {
        panic!(
            "benchmark cell failed after {} attempts: {}",
            cell.attempts,
            cell.failures.join("; ")
        )
    })
}

/// Per-classifier F1 Diff of a synthetic table, over the zoo of §6.2.
pub fn f1_diffs(real_train: &Table, synthetic: &Table, test: &Table) -> Vec<(&'static str, f64)> {
    classifier_zoo()
        .into_iter()
        .map(|(name, make)| {
            let mut rng = Rng::seed_from_u64(0xC1A551F1E5);
            let report = classification_utility(real_train, synthetic, test, make, &mut rng);
            (name, report.f1_diff)
        })
        .collect()
}

/// Synthesizes with any [`TableSynthesizer`] to the training size.
pub fn synthesize_like(method: &dyn TableSynthesizer, train: &Table, seed: u64) -> Table {
    let mut rng = Rng::seed_from_u64(seed ^ 0xba5e);
    method.synthesize(train.n_rows(), &mut rng)
}

/// Default LSTM design point (the paper's recommended gn/ht setting).
pub fn default_lstm(seed: u64) -> SynthesizerConfig {
    gan_config(
        NetworkKind::Lstm,
        TransformConfig::gn_ht(),
        TrainConfig::vtrain(0),
        seed,
    )
}

/// Default MLP design point.
pub fn default_mlp(seed: u64) -> SynthesizerConfig {
    gan_config(
        NetworkKind::Mlp,
        TransformConfig::gn_ht(),
        TrainConfig::vtrain(0),
        seed,
    )
}

/// The conditional-GAN default the paper uses in the methods
/// comparison (§7.2): CTrain on an MLP generator.
pub fn default_cgan(seed: u64) -> SynthesizerConfig {
    gan_config(
        NetworkKind::Mlp,
        TransformConfig::gn_ht(),
        TrainConfig::ctrain(0),
        seed,
    )
}

/// The "GAN" entry of the methods comparisons, following the paper's
/// guidance (Findings 4 and 9 in §8): conditional GAN for tables with
/// skewed labels (ratio > 9, the paper's skew criterion), plain VTrain
/// otherwise (conditional GAN does not help on balanced data) and for
/// unlabeled tables.
pub fn default_gan_for(train: &Table, seed: u64) -> SynthesizerConfig {
    let skewed = train.schema().label().is_some() && train.label_skewness() > 9.0;
    let tc = if skewed {
        TrainConfig::ctrain(0)
    } else {
        TrainConfig::vtrain(0)
    };
    gan_config(NetworkKind::Mlp, TransformConfig::gn_ht(), tc, seed)
}

/// Clamps a (hyper-parameter-searched) configuration to the quick-mode
/// compute budget: candidate settings legitimately explore capacities
/// up to 256 hidden units, which a single-core quick run cannot afford
/// on long LSTM unrolls. Learning-rate diversity — the axis that drives
/// the robustness findings — is untouched. No-op under `DAISY_FULL=1`.
pub fn clamp_for_quick(cfg: &mut SynthesizerConfig) {
    if daisy_telemetry::knobs::flag("DAISY_FULL") {
        return;
    }
    let s = scale();
    for h in cfg.g_hidden.iter_mut() {
        *h = (*h).min(s.hidden);
    }
    for h in cfg.d_hidden.iter_mut() {
        *h = (*h).min(s.hidden);
    }
    cfg.noise_dim = cfg.noise_dim.min(24);
    cfg.train.batch_size = cfg.train.batch_size.min(s.batch);
}

/// Uses an LSTM discriminator instead of the MLP one (Appendix B.4).
pub fn with_lstm_discriminator(mut cfg: SynthesizerConfig) -> SynthesizerConfig {
    cfg.discriminator = DiscriminatorKind::Lstm;
    cfg
}

// ---------------------------------------------------------------------
// Plain-text table rendering
// ---------------------------------------------------------------------

/// Prints a header banner for an experiment.
pub fn banner(title: &str, detail: &str) {
    println!();
    println!("=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    let s = scale();
    println!(
        "(scale: {} rows, {} iterations{}; set DAISY_FULL=1 for larger runs)",
        s.rows,
        s.iterations,
        if daisy_telemetry::knobs::flag("DAISY_FULL") {
            ", FULL"
        } else {
            ", quick"
        }
    );
    println!();
}

/// Renders an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Formats an f64 with 3 decimals.
pub fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_datasets::by_name;

    #[test]
    fn quick_scale_is_default() {
        // The suite must run in quick mode unless DAISY_FULL=1.
        if std::env::var("DAISY_FULL").is_err() {
            let s = scale();
            assert!(s.rows <= 2_000);
            assert!(s.iterations <= 500);
        }
    }

    #[test]
    fn prepare_upsamples_rare_labels() {
        // CovType's rarest label (1.5%) needs more rows than the base
        // scale to keep >= 30 training examples.
        let (train, _valid, _test) = prepare(&by_name("CovType").unwrap(), 1);
        let groups = train.rows_by_label();
        let min = groups.iter().map(Vec::len).filter(|&n| n > 0).min().unwrap();
        assert!(min >= 15, "rarest label has only {min} training rows");
    }

    #[test]
    fn default_gan_for_matches_skew_guidance() {
        let (balanced, _, _) = prepare(&by_name("Digits").unwrap(), 2);
        assert!(!default_gan_for(&balanced, 0).train.conditional);
        let (skewed, _, _) = prepare(&by_name("Census").unwrap(), 2);
        assert!(default_gan_for(&skewed, 0).train.conditional);
        let (unlabeled, _, _) = prepare(&by_name("Bing").unwrap(), 2);
        assert!(!default_gan_for(&unlabeled, 0).train.conditional);
    }

    fn tiny_table(rows: usize) -> Table {
        use daisy_data::{Attribute, Column, Schema};
        let schema = Schema::new(vec![
            Attribute::numerical("x"),
            Attribute::numerical("y"),
        ]);
        Table::new(
            schema,
            vec![
                Column::Num((0..rows).map(|i| i as f64).collect()),
                Column::Num((0..rows).map(|i| (i % 7) as f64).collect()),
            ],
        )
    }

    fn tiny_cfg(seed: u64) -> SynthesizerConfig {
        let mut tc = TrainConfig::vtrain(8);
        tc.batch_size = 16;
        tc.epochs = 2;
        let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
        cfg.g_hidden = vec![8];
        cfg.d_hidden = vec![8];
        cfg.noise_dim = 4;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn run_cell_clean_first_attempt() {
        let table = tiny_table(48);
        let cell = run_cell(&table, &tiny_cfg(1), 1);
        assert_eq!(cell.attempts, 1);
        assert!(cell.failures.is_empty());
        assert!(!cell.was_rocky());
        assert_eq!(cell.synthetic.unwrap().n_rows(), 48);
    }

    #[test]
    fn run_cell_exhausts_retries_on_persistent_failure() {
        // An empty table fails every attempt with a typed error; the
        // cell retries with fresh seeds and then reports the failures
        // instead of panicking.
        let empty = tiny_table(0);
        let cell = run_cell(&empty, &tiny_cfg(1), 1);
        assert!(cell.synthetic.is_none());
        assert_eq!(cell.attempts, CELL_RETRIES + 1);
        assert_eq!(cell.failures.len(), CELL_RETRIES + 1);
        assert!(cell.was_rocky());
        assert!(cell.failures[0].contains("empty table"));
    }

    #[test]
    fn resumable_sweep_journals_and_skips_done_cells() {
        let table = tiny_table(48);
        let dir = daisy_core::scratch_path("sweep-skip");
        let cells = vec![
            ("cell-a".to_string(), tiny_cfg(1)),
            ("cell-b".to_string(), tiny_cfg(2)),
        ];
        let plan = CheckpointPlan::disabled();
        let first = run_sweep_resumable(&table, &cells, 1, &dir, &plan).unwrap();
        assert_eq!(first.len(), 2);
        assert!(first
            .iter()
            .all(|(_, r)| matches!(r, SweepCellResult::Ran(c) if c.synthetic.is_some())));
        // Rerun: every cell is journalled done, so nothing recomputes.
        let second = run_sweep_resumable(&table, &cells, 1, &dir, &plan).unwrap();
        assert!(second
            .iter()
            .all(|(_, r)| matches!(r, SweepCellResult::Skipped)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_sweep_resumes_the_inflight_cell() {
        let table = tiny_table(48);
        let dir = daisy_core::scratch_path("sweep-kill");
        let cells = vec![
            ("cell-a".to_string(), tiny_cfg(1)),
            ("cell-b".to_string(), tiny_cfg(2)),
        ];
        // Kill the first cell mid-training (tiny_cfg: 8 iterations over
        // 2 epochs, so step 4 is past the first checkpoint boundary):
        // the sweep stops as if the process died, cell-a's journal
        // entry stays `start`, cell-b never starts.
        let killed =
            run_sweep_resumable(&table, &cells, 1, &dir, &CheckpointPlan::disabled().kill_at(4))
                .unwrap();
        assert_eq!(killed.len(), 1);
        assert!(matches!(
            &killed[0].1,
            SweepCellResult::Ran(c) if c.interrupted
        ));
        let j = SweepJournal::open(dir.join("journal.txt")).unwrap();
        assert_eq!(
            j.status("cell-a"),
            Some(crate::journal::CellStatus::InProgress)
        );
        assert_eq!(j.status("cell-b"), None);
        // Rerun without the kill: cell-a resumes from its checkpoint
        // and completes, cell-b runs fresh; both end up journalled done.
        let resumed =
            run_sweep_resumable(&table, &cells, 1, &dir, &CheckpointPlan::disabled()).unwrap();
        assert_eq!(resumed.len(), 2);
        assert!(resumed
            .iter()
            .all(|(_, r)| matches!(r, SweepCellResult::Ran(c) if c.synthetic.is_some())));
        let j = SweepJournal::open(dir.join("journal.txt")).unwrap();
        assert!(j.is_done("cell-a"));
        assert!(j.is_done("cell-b"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(0.1234567), "0.123");
        // print_table must not panic on ragged-width content.
        print_table(
            &["a", "bb"],
            &[vec!["x".into(), "y".into()], vec!["longer".into(), "z".into()]],
        );
    }
}
