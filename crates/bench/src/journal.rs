//! Crash-safe sweep journal: an append-only manifest recording which
//! design-space cells a sweep has started, completed, or failed.
//!
//! A sweep that dies mid-cell (OOM kill, power loss, Ctrl-C) leaves the
//! journal behind; the rerun replays it, skips every cell already
//! marked `done`, and re-runs only the in-flight and unvisited cells.
//! Combined with per-cell training checkpoints
//! ([`daisy_core::CheckpointPlan`]), an interrupted sweep resumes where
//! it stopped instead of recomputing hours of finished work.
//!
//! The format is deliberately dumb: one UTF-8 line per state change,
//! `start <id>` / `done <id>` / `failed <id>`, appended and fsynced
//! before the state it records is acted on. Replay is last-wins per
//! cell id. A torn final line (the crash happened mid-append) parses as
//! an unknown verb and is ignored — the worst outcome is re-running one
//! cell that was about to be marked done, never skipping one that
//! wasn't.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// The journalled state of one sweep cell (last-wins over the log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// A `start` line with no later `done`/`failed`: the sweep died (or
    /// is dying) inside this cell. A rerun re-runs it, resuming from
    /// its training checkpoint when one exists.
    InProgress,
    /// The cell completed; a rerun skips it.
    Done,
    /// The cell exhausted its retries; a rerun tries it again.
    Failed,
}

/// An append-only, fsynced journal of sweep-cell state changes.
pub struct SweepJournal {
    path: PathBuf,
    file: File,
    status: BTreeMap<String, CellStatus>,
}

impl SweepJournal {
    /// Opens (or creates) the journal at `path` and replays any
    /// existing lines. Malformed lines — including a torn final line
    /// from a crash mid-append — are ignored.
    pub fn open(path: impl AsRef<Path>) -> io::Result<SweepJournal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut existing = String::new();
        file.read_to_string(&mut existing)?;
        // Repair a torn tail: terminate it so the next append starts a
        // fresh line instead of gluing onto the partial one.
        if !existing.is_empty() && !existing.ends_with('\n') {
            file.write_all(b"\n")?;
            file.sync_data()?;
        }
        let mut status = BTreeMap::new();
        for line in existing.lines() {
            let Some((verb, id)) = line.split_once(' ') else {
                continue;
            };
            let state = match verb {
                "start" => CellStatus::InProgress,
                "done" => CellStatus::Done,
                "failed" => CellStatus::Failed,
                _ => continue,
            };
            status.insert(id.to_string(), state);
        }
        Ok(SweepJournal { path, file, status })
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when the journal holds no replayed entries (fresh sweep).
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// The journalled state of `id`, if any line mentioned it.
    pub fn status(&self, id: &str) -> Option<CellStatus> {
        self.status.get(id).copied()
    }

    /// True when the journal's last word on `id` is `done`.
    pub fn is_done(&self, id: &str) -> bool {
        self.status(id) == Some(CellStatus::Done)
    }

    /// Number of cells currently recorded as done.
    pub fn done_count(&self) -> usize {
        self.status
            .values()
            .filter(|s| **s == CellStatus::Done)
            .count()
    }

    /// Journals that work on `id` is beginning. Durable before return.
    pub fn record_start(&mut self, id: &str) -> io::Result<()> {
        self.append("start", id, CellStatus::InProgress)
    }

    /// Journals that `id` completed. Durable before return.
    pub fn record_done(&mut self, id: &str) -> io::Result<()> {
        self.append("done", id, CellStatus::Done)
    }

    /// Journals that `id` failed for good. Durable before return.
    pub fn record_failed(&mut self, id: &str) -> io::Result<()> {
        self.append("failed", id, CellStatus::Failed)
    }

    fn append(&mut self, verb: &str, id: &str, state: CellStatus) -> io::Result<()> {
        if id.contains('\n') || id.contains('\r') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cell id must be a single line, got {id:?}"),
            ));
        }
        self.file.write_all(format!("{verb} {id}\n").as_bytes())?;
        self.file.sync_data()?;
        self.status.insert(id.to_string(), state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_core::scratch_path;

    #[test]
    fn replay_is_last_wins_per_cell() {
        let path = scratch_path("journal-replay");
        {
            let mut j = SweepJournal::open(&path).unwrap();
            assert!(j.is_empty());
            j.record_start("a").unwrap();
            j.record_done("a").unwrap();
            j.record_start("b").unwrap();
            j.record_start("c").unwrap();
            j.record_failed("c").unwrap();
        }
        let j = SweepJournal::open(&path).unwrap();
        assert!(!j.is_empty());
        assert!(j.is_done("a"));
        assert_eq!(j.status("b"), Some(CellStatus::InProgress));
        assert_eq!(j.status("c"), Some(CellStatus::Failed));
        assert_eq!(j.status("d"), None);
        assert_eq!(j.done_count(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_ignored() {
        let path = scratch_path("journal-torn");
        {
            let mut j = SweepJournal::open(&path).unwrap();
            j.record_done("a").unwrap();
        }
        // Simulate a crash mid-append: a prefix of "done b\n" without
        // the full verb survives on disk.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"don").unwrap();
        }
        let j = SweepJournal::open(&path).unwrap();
        assert!(j.is_done("a"));
        assert_eq!(j.status("b"), None);
        // The journal stays appendable after replaying a torn tail.
        let mut j = j;
        j.record_done("b").unwrap();
        let j = SweepJournal::open(&path).unwrap();
        assert!(j.is_done("b"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn multiline_ids_are_rejected() {
        let path = scratch_path("journal-badid");
        let mut j = SweepJournal::open(&path).unwrap();
        assert!(j.record_start("evil\ndone x").is_err());
        assert_eq!(j.status("evil"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ids_with_spaces_roundtrip() {
        let path = scratch_path("journal-spaces");
        {
            let mut j = SweepJournal::open(&path).unwrap();
            j.record_done("mlp/vtrain lr 0.002").unwrap();
        }
        let j = SweepJournal::open(&path).unwrap();
        assert!(j.is_done("mlp/vtrain lr 0.002"));
        std::fs::remove_file(&path).unwrap();
    }
}
