//! Table 10: AQP utility DiffAQP of VAE, PrivBayes-ε and GAN on
//! CovType, Census and the AQP benchmark Bing (unlabeled → GAN runs
//! unconditionally).
//!
//! Expected shape: GAN achieves the smallest relative-error difference;
//! VAE is closest to GAN on Bing (the paper singles this out).

use daisy_baselines::{PrivBayes, PrivBayesConfig, Vae, VaeConfig};
use daisy_bench::harness::*;
use daisy_datasets::by_name;
use daisy_eval::{aqp_utility, generate_workload};
use daisy_tensor::Rng;

fn main() {
    banner(
        "Table 10: AQP utility DiffAQP by method (lower is better)",
        "Aggregate workload vs 1% uniform samples.",
    );
    let s = scale();
    let mut rows = Vec::new();
    for dataset in ["CovType", "Census", "Bing"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, _test) = prepare(&spec, 42);
        // The paper draws 1% samples from 100k+ row tables (>=1000
        // sampled rows). At quick scale 1% of ~1000 rows would be ~10
        // rows — a degenerate reference — so keep the absolute sample
        // size at >= 60 rows instead.
        let sample_frac = (60.0 / train.n_rows() as f64).max(0.01);
        let mut wl_rng = Rng::seed_from_u64(303);
        let queries = generate_workload(&train, s.n_queries, &mut wl_rng);
        let mut row = vec![dataset.to_string()];

        let vae = Vae::fit(
            &train,
            &VaeConfig {
                iterations: s.vae_iterations,
                hidden: vec![s.hidden * 2],
                ..VaeConfig::default()
            },
        );
        let mut rng = Rng::seed_from_u64(15);
        row.push(fmt(aqp_utility(
            &train,
            &synthesize_like(&vae, &train, 17),
            &queries, sample_frac, 3, &mut rng,
        )));
        for eps in [0.2, 0.4, 0.8, 1.6] {
            let pb = PrivBayes::fit(&train, &PrivBayesConfig::with_epsilon(eps));
            let mut rng = Rng::seed_from_u64(15);
            row.push(fmt(aqp_utility(
                &train,
                &synthesize_like(&pb, &train, 17),
                &queries, sample_frac, 3, &mut rng,
            )));
        }
        // Bing has no label: default_gan_for runs it unconditionally.
        let cfg = default_gan_for(&train, 131);
        let synthetic = fit_and_generate(&train, &cfg, 17);
        let mut rng = Rng::seed_from_u64(15);
        row.push(fmt(aqp_utility(&train, &synthetic, &queries, sample_frac, 3, &mut rng)));
        rows.push(row);
    }
    print_table(
        &["dataset", "VAE", "PB-0.2", "PB-0.4", "PB-0.8", "PB-1.6", "GAN"],
        &rows,
    );
}
