//! Table 4: effect of the synthetic/original size ratio (50% .. 200%)
//! on F1 Diff with a DT10 classifier, on Adult, CovType, SDataNum and
//! SDataCat.
//!
//! Expected shape: mild improvement with more synthetic rows, but no
//! dramatic gain — larger samples from the same generator add no new
//! information.

use daisy_bench::harness::*;
use daisy_core::Synthesizer;
use daisy_datasets::{by_name, SDataCat, SDataNum, Skew};
use daisy_eval::classification_utility;
use daisy_tensor::Rng;

fn main() {
    banner(
        "Table 4: synthetic/original size ratio (DT10 F1 Diff)",
        "Ratios 50%, 100%, 150%, 200% of the training size.",
    );
    let s = scale();
    let mut tables = Vec::new();
    for name in ["Adult", "CovType"] {
        let spec = by_name(name).unwrap();
        let (train, valid, test) = prepare(&spec, 42);
        tables.push((name.to_string(), train, valid, test));
    }
    let sn = SDataNum { correlation: 0.5, skew: Skew::Balanced }.generate(s.rows, 7);
    let (tr, va, te) = split(&sn, 7);
    tables.push(("SDataNum".into(), tr, va, te));
    let sc = SDataCat::new(0.5, Skew::Balanced).generate(s.rows, 8);
    let (tr, va, te) = split(&sc, 8);
    tables.push(("SDataCat".into(), tr, va, te));

    let mut rows = Vec::new();
    for (name, train, _valid, test) in &tables {
        let cfg = default_mlp(41);
        let fitted = Synthesizer::fit(train, &cfg);
        let mut row = vec![name.clone()];
        for ratio in [0.5, 1.0, 1.5, 2.0] {
            let n = ((train.n_rows() as f64) * ratio) as usize;
            let mut rng = Rng::seed_from_u64(9 + (ratio * 10.0) as u64);
            let synthetic = fitted.generate(n.max(10), &mut rng);
            let mut rng2 = Rng::seed_from_u64(77);
            let report = classification_utility(
                train,
                &synthetic,
                test,
                || Box::new(daisy_eval::DecisionTree::new(10)),
                &mut rng2,
            );
            row.push(fmt(report.f1_diff));
        }
        rows.push(row);
    }
    print_table(&["dataset", "50%", "100%", "150%", "200%"], &rows);
}
