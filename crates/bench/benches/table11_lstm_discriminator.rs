//! Table 11 (Appendix B.4): the LSTM-based discriminator, compared by
//! F1 Diff against the MLP-based discriminator on Adult, for MLP and
//! LSTM generators across transformations.
//!
//! Expected shape: the LSTM discriminator is significantly worse than
//! the MLP one — the reason the paper's main experiments fix D = MLP.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::by_name;

fn main() {
    banner(
        "Table 11: LSTM-based discriminator on Adult (F1 Diff)",
        "Rows: generator x transformation; columns: D=MLP vs D=LSTM.",
    );
    let spec = by_name("Adult").unwrap();
    let (train, _valid, test) = prepare(&spec, 42);
    let mut rows = Vec::new();
    for network in [NetworkKind::Mlp, NetworkKind::Lstm] {
        for transform in [TransformConfig::sn_ht(), TransformConfig::gn_ht()] {
            let base = gan_config(network, transform, TrainConfig::vtrain(0), 141);
            let syn_mlp_d = fit_and_generate(&train, &base, 19);
            let lstm_cfg = with_lstm_discriminator(base);
            let syn_lstm_d = fit_and_generate(&train, &lstm_cfg, 19);
            let d_mlp = f1_diffs(&train, &syn_mlp_d, &test);
            let d_lstm = f1_diffs(&train, &syn_lstm_d, &test);
            let avg = |d: &[(&str, f64)]| d.iter().map(|(_, v)| v).sum::<f64>() / d.len() as f64;
            rows.push(vec![
                format!("{} {}", network.name(), transform.short_name()),
                fmt(avg(&d_mlp)),
                fmt(avg(&d_lstm)),
            ]);
        }
    }
    print_table(&["generator", "D=MLP (mean F1 Diff)", "D=LSTM (mean F1 Diff)"], &rows);
}
