//! Table 8: AQP utility DiffAQP across generator networks and
//! transformations on CovType and Census (the large datasets).
//!
//! Expected shape: LSTM gn/ht answers the aggregate workload with the
//! smallest relative-error difference; CNN (Census) is far worse.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::by_name;
use daisy_eval::{aqp_utility, generate_workload};
use daisy_tensor::Rng;

fn main() {
    banner(
        "Table 8: AQP utility DiffAQP by network (lower is better)",
        "Aggregate workload vs 1% uniform samples.",
    );
    let s = scale();
    let mut rows = Vec::new();
    for dataset in ["CovType", "Census"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, _test) = prepare(&spec, 42);
        // The paper draws 1% samples from 100k+ row tables (>=1000
        // sampled rows). At quick scale 1% of ~1000 rows would be ~10
        // rows — a degenerate reference — so keep the absolute sample
        // size at >= 60 rows instead.
        let sample_frac = (60.0 / train.n_rows() as f64).max(0.01);
        let mut wl_rng = Rng::seed_from_u64(202);
        let queries = generate_workload(&train, s.n_queries, &mut wl_rng);
        let mut row = vec![dataset.to_string()];
        if train.n_classes() == 2 {
            let cfg = gan_config(
                NetworkKind::Cnn,
                TransformConfig::sn_od(),
                TrainConfig::vtrain(0),
                111,
            );
            let synthetic = fit_and_generate(&train, &cfg, 11);
            let mut rng = Rng::seed_from_u64(12);
            row.push(fmt(aqp_utility(&train, &synthetic, &queries, sample_frac, 3, &mut rng)));
        } else {
            row.push("-".into());
        }
        for network in [NetworkKind::Mlp, NetworkKind::Lstm] {
            for transform in [TransformConfig::sn_ht(), TransformConfig::gn_ht()] {
                let cfg = gan_config(network, transform, TrainConfig::vtrain(0), 111);
                let synthetic = fit_and_generate(&train, &cfg, 11);
                let mut rng = Rng::seed_from_u64(12);
                row.push(fmt(aqp_utility(&train, &synthetic, &queries, sample_frac, 3, &mut rng)));
            }
        }
        rows.push(row);
    }
    print_table(
        &["dataset", "CNN", "MLP sn/ht", "MLP gn/ht", "LSTM sn/ht", "LSTM gn/ht"],
        &rows,
    );
}
