//! Figure 9: conditional GAN on the simulated datasets, balanced vs
//! skew — GAN vs CGAN(VTrain) vs CGAN(CTrain) per classifier.
//!
//! Expected shape: on balanced labels conditional GAN does not help
//! (sometimes hurts); under skew, CGAN(CTrain) improves utility.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::{SDataCat, SDataNum, Skew};

fn main() {
    banner(
        "Figure 9: conditional GAN on simulated data (F1 Diff)",
        "GAN vs CGAN(VTrain) vs CGAN(CTrain), correlation 0.5.",
    );
    let s = scale();
    let mut datasets = Vec::new();
    for skew in [Skew::Balanced, Skew::Skewed] {
        datasets.push((
            format!("SDataNum-{}", skew.suffix()),
            SDataNum { correlation: 0.5, skew }.generate(s.rows, 3),
        ));
        datasets.push((
            format!("SDataCat-{}", skew.suffix()),
            SDataCat::new(0.5, skew).generate(s.rows, 4),
        ));
    }
    for (name, table) in &datasets {
        let (train, _valid, test) = split(table, 9);
        println!("-- {name} --");
        let variants: Vec<(&str, TrainConfig)> = vec![
            ("GAN", TrainConfig::vtrain(0)),
            ("CGAN(VTrain)", TrainConfig::cgan_v(0)),
            ("CGAN(CTrain)", TrainConfig::ctrain(0)),
        ];
        let mut rows = Vec::new();
        for (vname, tc) in variants {
            let cfg = gan_config(NetworkKind::Mlp, TransformConfig::gn_ht(), tc, 91);
            let synthetic = fit_and_generate(&train, &cfg, 7);
            let diffs = f1_diffs(&train, &synthetic, &test);
            let mut row = vec![vname.to_string()];
            row.extend(diffs.iter().map(|(_, d)| fmt(*d)));
            rows.push(row);
        }
        print_table(&["variant", "DT10", "DT30", "RF10", "RF20", "AB", "LR"], &rows);
        println!();
    }
}
