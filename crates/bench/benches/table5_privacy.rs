//! Table 5: privacy against re-identification — hitting rate and DCR of
//! GAN vs PrivBayes at ε ∈ {0.1, 0.2, 0.4, 0.8, 1.6} on Adult and
//! CovType.
//!
//! Expected shape (Finding 6): GAN's hitting rate is competitive with
//! tight-ε PrivBayes on mixed-type data (Adult); on the mostly numeric
//! CovType, PB's equi-width binning makes its numeric values rarely
//! "similar", so PB shows lower hitting rates there. DCR is comparable
//! overall.

use daisy_baselines::{PrivBayes, PrivBayesConfig};
use daisy_bench::harness::*;
use daisy_datasets::by_name;
use daisy_eval::{dcr, hitting_rate};
use daisy_tensor::Rng;

fn main() {
    banner(
        "Table 5: privacy risk (hitting rate %, DCR)",
        "Hitting rate lower = better privacy; DCR larger = better privacy.",
    );
    let s = scale();
    for dataset in ["Adult", "CovType"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, test) = prepare(&spec, 42);
        println!("-- {dataset} --");
        let mut methods: Vec<(String, daisy_data::Table)> = Vec::new();
        for eps in [0.1, 0.2, 0.4, 0.8, 1.6] {
            let pb = PrivBayes::fit(&train, &PrivBayesConfig::with_epsilon(eps));
            methods.push((format!("PB-{eps}"), synthesize_like(&pb, &train, 3)));
        }
        let cfg = default_gan_for(&train, 51);
        let synthetic = fit_and_generate(&train, &cfg, 3);
        methods.push(("GAN".into(), synthetic));

        let mut rows = Vec::new();
        // Reference: what DCR/hit-rate look like for *fresh real data*
        // from the same population (the holdout). A method below this
        // DCR is memorizing.
        {
            let mut rng = Rng::seed_from_u64(13);
            let hr = hitting_rate(&train, &test, s.privacy_samples, &mut rng);
            let d = daisy_eval::dcr_baseline(&train, &test, s.privacy_samples, &mut rng);
            rows.push(vec!["real holdout (ref)".into(), format!("{hr:.3}"), fmt(d)]);
        }
        for (name, synthetic) in &methods {
            let mut rng = Rng::seed_from_u64(13);
            let hr = hitting_rate(&train, synthetic, s.privacy_samples, &mut rng);
            let d = dcr(&train, synthetic, s.privacy_samples, &mut rng);
            rows.push(vec![name.clone(), format!("{hr:.3}"), fmt(d)]);
        }
        print_table(&["method", "hit-rate %", "DCR"], &rows);
        println!();
    }
}
