//! Figure 7: data-synthesis methods compared on classification utility
//! — VAE, PrivBayes at ε ∈ {0.2, 0.4, 0.8, 1.6}, and GAN, per
//! classifier, on Adult, CovType, Census and SAT.
//!
//! Expected shape (Finding 5): PB improves as ε grows; VAE is moderate;
//! GAN clearly wins, sometimes by an order of magnitude.

use daisy_baselines::{PrivBayes, PrivBayesConfig, Vae, VaeConfig};
use daisy_bench::harness::*;
use daisy_datasets::by_name;

fn main() {
    banner(
        "Figure 7: methods comparison (F1 Diff, lower is better)",
        "VAE vs PB-eps vs GAN across the classifier zoo.",
    );
    let s = scale();
    for dataset in ["Adult", "CovType", "Census", "SAT"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, test) = prepare(&spec, 42);
        println!("-- {dataset} --");
        let mut synthetic_tables: Vec<(String, daisy_data::Table)> = Vec::new();
        let vae = Vae::fit(
            &train,
            &VaeConfig {
                iterations: s.vae_iterations,
                hidden: vec![s.hidden * 2],
                ..VaeConfig::default()
            },
        );
        synthetic_tables.push(("VAE".into(), synthesize_like(&vae, &train, 5)));
        for eps in [0.2, 0.4, 0.8, 1.6] {
            let pb = PrivBayes::fit(&train, &PrivBayesConfig::with_epsilon(eps));
            synthetic_tables.push((format!("PB-{eps}"), synthesize_like(&pb, &train, 5)));
        }
        let cfg = default_gan_for(&train, 61);
        synthetic_tables.push(("GAN".into(), fit_and_generate(&train, &cfg, 5)));

        let mut rows = Vec::new();
        for (name, synthetic) in &synthetic_tables {
            let diffs = f1_diffs(&train, synthetic, &test);
            let mut row = vec![name.clone()];
            row.extend(diffs.iter().map(|(_, d)| fmt(*d)));
            rows.push(row);
        }
        print_table(&["method", "DT10", "DT30", "RF10", "RF20", "AB", "LR"], &rows);
        println!();
    }
}
