//! Criterion microbenchmarks for the hot kernels under the study:
//! matmul, convolution, LSTM steps, record transformation, and one full
//! GAN training step per network family. These quantify the ablation
//! trade-offs called out in DESIGN.md (tape autodiff cost, LSTM's
//! sequential overhead vs MLP).

use criterion::{criterion_group, criterion_main, Criterion};
use daisy_core::discriminator::{Discriminator, MlpDiscriminator};
use daisy_core::generator::{Generator, LstmGenerator, MlpGenerator};
use daisy_core::sampler::TrainingData;
use daisy_core::train::train_gan;
use daisy_core::{output_head::softmax_spans, NetworkKind, TrainConfig};
use daisy_data::{RecordCodec, TransformConfig};
use daisy_datasets::by_name;
use daisy_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(0);
    let a = Tensor::randn(&[128, 256], &mut rng);
    let b = Tensor::randn(&[256, 128], &mut rng);
    c.bench_function("matmul_128x256x128", |bencher| {
        bencher.iter(|| black_box(a.matmul(&b)))
    });
    c.bench_function("matmul_tn_128x256x128", |bencher| {
        bencher.iter(|| black_box(a.matmul_tn(&Tensor::randn(&[128, 64], &mut rng.clone()))))
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(1);
    let x = Tensor::randn(&[32, 8, 8, 8], &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
    c.bench_function("conv2d_32x8x8x8_k3", |bencher| {
        bencher.iter(|| black_box(daisy_tensor::conv::conv2d(&x, &w, 1, 1)))
    });
}

fn bench_transform(c: &mut Criterion) {
    let spec = by_name("Adult").unwrap();
    let table = spec.generate(2000, 2);
    let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
    c.bench_function("encode_adult_2000_gn_ht", |bencher| {
        bencher.iter(|| black_box(codec.encode_table(&table)))
    });
    let encoded = codec.encode_table(&table);
    c.bench_function("decode_adult_2000_gn_ht", |bencher| {
        bencher.iter(|| black_box(codec.decode_table(&encoded)))
    });
}

fn bench_gan_step(c: &mut Criterion) {
    let spec = by_name("Adult").unwrap();
    let table = spec.generate(1000, 3);
    let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
    let data = TrainingData::from_table(&table, &codec);
    let spans = softmax_spans(&codec.output_blocks());
    for network in [NetworkKind::Mlp, NetworkKind::Lstm] {
        let name = format!("gan_iteration_{}", network.name().to_lowercase());
        c.bench_function(&name, |bencher| {
            bencher.iter_with_setup(
                || {
                    let mut rng = Rng::seed_from_u64(4);
                    let g: Box<dyn Generator> = match network {
                        NetworkKind::Mlp => Box::new(MlpGenerator::new(
                            24,
                            0,
                            &[64, 64],
                            codec.output_blocks(),
                            &mut rng,
                        )),
                        _ => Box::new(LstmGenerator::new(
                            24,
                            0,
                            64,
                            32,
                            codec.output_blocks(),
                            &mut rng,
                        )),
                    };
                    let d: Box<dyn Discriminator> =
                        Box::new(MlpDiscriminator::new(codec.width(), 0, &[64], &mut rng));
                    (g, d, Rng::seed_from_u64(5))
                },
                |(g, d, mut rng)| {
                    let mut cfg = TrainConfig::vtrain(1);
                    cfg.batch_size = 64;
                    cfg.epochs = 1;
                    black_box(train_gan(g.as_ref(), d.as_ref(), &data, &spans, &cfg, &mut rng));
                },
            )
        });
    }
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_conv, bench_transform, bench_gan_step
}
criterion_main!(kernels);
