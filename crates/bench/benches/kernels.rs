//! Microbenchmarks for the hot kernels under the study: matmul,
//! convolution, record transformation, and one full GAN training epoch
//! per network family — each measured serial (1 thread) and parallel
//! (4 threads) against the pre-parallel naive reference kernels.
//! Timing is a hand-rolled median-of-samples loop so the suite carries
//! no external benchmarking dependency.
//!
//! Set `DAISY_BENCH_JSON=<path>` to also write the measurements as JSON
//! (the committed `BENCH_kernels.json` at the repo root is produced this
//! way); see `docs/PERFORMANCE.md` for the runbook and how to read it.

use daisy_core::discriminator::{Discriminator, MlpDiscriminator};
use daisy_core::generator::{Generator, LstmGenerator, MlpGenerator};
use daisy_core::sampler::TrainingData;
use daisy_core::train::train_gan;
use daisy_core::{output_head::softmax_spans, NetworkKind, TrainConfig};
use daisy_data::{RecordCodec, TransformConfig};
use daisy_datasets::by_name;
use daisy_telemetry::json::Json;
use daisy_telemetry::MemoryRecorder;
use daisy_tensor::{pool, Rng, Tensor};
use std::hint::black_box;
use std::sync::{Arc, Mutex};
// daisy-lint: allow(D002) -- benchmarks measure wall time by design
use std::time::Instant;

/// One recorded measurement, mirrored into the JSON report.
struct Rec {
    name: String,
    threads: usize,
    median_ms: f64,
    samples: usize,
}

static RECORDS: Mutex<Vec<Rec>> = Mutex::new(Vec::new());

/// Runs `f` repeatedly and reports the median per-iteration time over
/// `samples` timed samples (after one warm-up call).
fn bench(name: &str, samples: usize, mut f: impl FnMut()) {
    f(); // warm-up
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        // daisy-lint: allow(D002) -- benchmark timing loop
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    let threads = pool::num_threads();
    println!("{name:<40} {median:>10.3} ms/iter  ({samples} samples, {threads} thread(s))");
    RECORDS.lock().unwrap().push(Rec {
        name: name.to_string(),
        threads,
        median_ms: median,
        samples,
    });
}

/// The seed's serial i-k-j matmul, kept verbatim as the "before"
/// reference the parallel blocked kernel is compared against.
fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        let a_row = &ad[i * k..(i + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

fn bench_matmul_references() {
    // "Before" numbers: the naive serial kernel, single-threaded.
    pool::set_threads(1);
    let mut rng = Rng::seed_from_u64(0);
    let a = Tensor::randn(&[128, 256], &mut rng);
    let b = Tensor::randn(&[256, 128], &mut rng);
    bench("matmul_naive_128x256x128", 20, || {
        black_box(matmul_naive(&a, &b));
    });
    let a5 = Tensor::randn(&[512, 512], &mut rng);
    let b5 = Tensor::randn(&[512, 512], &mut rng);
    bench("matmul_naive_512x512x512", 10, || {
        black_box(matmul_naive(&a5, &b5));
    });
}

fn bench_matmul(threads: usize) {
    pool::set_threads(threads);
    let mut rng = Rng::seed_from_u64(0);
    let a = Tensor::randn(&[128, 256], &mut rng);
    let b = Tensor::randn(&[256, 128], &mut rng);
    bench(&format!("matmul_128x256x128@{threads}t"), 20, || {
        black_box(a.matmul(&b));
    });
    let c = Tensor::randn(&[128, 64], &mut rng);
    bench(&format!("matmul_tn_128x256x128@{threads}t"), 20, || {
        black_box(a.matmul_tn(&c));
    });
    let a5 = Tensor::randn(&[512, 512], &mut rng);
    let b5 = Tensor::randn(&[512, 512], &mut rng);
    bench(&format!("matmul_512x512x512@{threads}t"), 10, || {
        black_box(a5.matmul(&b5));
    });
    let b5t = b5.clone();
    bench(&format!("matmul_nt_512x512x512@{threads}t"), 10, || {
        black_box(a5.matmul_nt(&b5t));
    });
}

fn bench_conv(threads: usize) {
    pool::set_threads(threads);
    let mut rng = Rng::seed_from_u64(1);
    let x = Tensor::randn(&[32, 8, 8, 8], &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
    bench(&format!("conv2d_32x8x8x8_k3@{threads}t"), 20, || {
        black_box(daisy_tensor::conv::conv2d(&x, &w, 1, 1));
    });
    let x2 = Tensor::randn(&[64, 16, 16, 16], &mut rng);
    let w2 = Tensor::randn(&[32, 16, 4, 4], &mut rng);
    bench(&format!("conv2d_64x16x16x16_k4s2@{threads}t"), 10, || {
        black_box(daisy_tensor::conv::conv2d(&x2, &w2, 2, 1));
    });
}

fn bench_reductions(threads: usize) {
    pool::set_threads(threads);
    let mut rng = Rng::seed_from_u64(6);
    let a = Tensor::randn(&[512, 512], &mut rng);
    let b = Tensor::randn(&[512, 512], &mut rng);
    bench(&format!("sum_512x512@{threads}t"), 50, || {
        black_box(a.sum());
    });
    bench(&format!("mul_512x512@{threads}t"), 50, || {
        black_box(a.mul(&b));
    });
    bench(&format!("softmax_rows_512x512@{threads}t"), 20, || {
        black_box(a.softmax_rows());
    });
}

fn bench_transform() {
    pool::set_threads(1);
    let spec = by_name("Adult").unwrap();
    let table = spec.generate(2000, 2);
    let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
    bench("encode_adult_2000_gn_ht", 10, || {
        black_box(codec.encode_table(&table));
    });
    let encoded = codec.encode_table(&table);
    bench("decode_adult_2000_gn_ht", 10, || {
        black_box(codec.decode_table(&encoded));
    });
}

/// End-to-end epoch time: one full VTrain epoch (all D and G steps over
/// the dataset) per network family, serial vs parallel.
fn bench_gan_epoch(threads: usize) {
    pool::set_threads(threads);
    let spec = by_name("Adult").unwrap();
    let table = spec.generate(1000, 3);
    let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
    let data = TrainingData::from_table(&table, &codec);
    let spans = softmax_spans(&codec.output_blocks());
    for network in [NetworkKind::Mlp, NetworkKind::Lstm] {
        let name = format!(
            "gan_epoch_{}@{threads}t",
            network.name().to_lowercase()
        );
        bench(&name, 10, || {
            let mut rng = Rng::seed_from_u64(4);
            let g: Box<dyn Generator> = match network {
                NetworkKind::Mlp => Box::new(MlpGenerator::new(
                    24,
                    0,
                    &[64, 64],
                    codec.output_blocks(),
                    &mut rng,
                )),
                _ => Box::new(LstmGenerator::new(
                    24,
                    0,
                    64,
                    32,
                    codec.output_blocks(),
                    &mut rng,
                )),
            };
            let d: Box<dyn Discriminator> =
                Box::new(MlpDiscriminator::new(codec.width(), 0, &[64], &mut rng));
            let mut step_rng = Rng::seed_from_u64(5);
            let mut cfg = TrainConfig::vtrain(1);
            cfg.batch_size = 64;
            cfg.epochs = 1;
            black_box(
                train_gan(g.as_ref(), d.as_ref(), &data, &spans, &cfg, &mut step_rng)
                    .expect("bench iteration trains"),
            );
        });
    }
}

/// Builds the JSON report through the shared telemetry [`Json`] writer
/// (the same serializer `DAISY_TRACE` lines go through), replacing the
/// hand-rolled string builder this bench used to carry.
fn bench_report(host_cores: usize) -> Json {
    let recs = RECORDS.lock().unwrap();
    let mut root = vec![
        (
            "generated_by".to_string(),
            Json::Str(
                "DAISY_BENCH_JSON=BENCH_kernels.json cargo bench -p daisy-bench --bench kernels"
                    .to_string(),
            ),
        ),
        ("host_logical_cores".to_string(), Json::Num(host_cores as f64)),
        (
            "unit".to_string(),
            Json::Str("median ms per iteration".to_string()),
        ),
    ];
    if host_cores < 4 {
        root.push((
            "note".to_string(),
            Json::Str(format!(
                "host exposes only {host_cores} logical core(s); @4t rows \
measure pool overhead under oversubscription, not parallel speedup — re-run on a \
4+ core host to observe scaling"
            )),
        ));
    }
    let entries = recs
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(r.name.clone())),
                ("threads".to_string(), Json::Num(r.threads as f64)),
                (
                    "median_ms".to_string(),
                    Json::Num((r.median_ms * 1e3).round() / 1e3),
                ),
                ("samples".to_string(), Json::Num(r.samples as f64)),
            ])
        })
        .collect();
    root.push(("entries".to_string(), Json::Arr(entries)));
    Json::Obj(root)
}

fn write_json(path: &str, host_cores: usize) {
    let report = bench_report(host_cores);
    let mut body = report.to_pretty();
    body.push('\n');
    match std::fs::write(path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!(
            "warning: DAISY_BENCH_JSON={path} is not writable ({e}); report not saved"
        ),
    }
}

/// Measures what the telemetry layer costs: the hottest kernel and one
/// full GAN epoch, each with tracing disabled (the no-op gate) and with
/// a live in-memory recorder (metric observation on every kernel
/// dispatch, events at epoch granularity).
fn bench_telemetry_overhead() {
    pool::set_threads(1);
    let mut rng = Rng::seed_from_u64(7);
    let a = Tensor::randn(&[128, 256], &mut rng);
    let b = Tensor::randn(&[256, 128], &mut rng);
    bench("matmul_128x256x128_telemetry_off", 20, || {
        black_box(a.matmul(&b));
    });
    let rec: Arc<MemoryRecorder> = Arc::new(MemoryRecorder::new());
    daisy_telemetry::with_recorder(rec, || {
        bench("matmul_128x256x128_telemetry_on", 20, || {
            black_box(a.matmul(&b));
        });
    });

    let spec = by_name("Adult").unwrap();
    let table = spec.generate(1000, 3);
    let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
    let data = TrainingData::from_table(&table, &codec);
    let spans = softmax_spans(&codec.output_blocks());
    let epoch = || {
        let mut rng = Rng::seed_from_u64(4);
        let g = MlpGenerator::new(24, 0, &[64, 64], codec.output_blocks(), &mut rng);
        let d = MlpDiscriminator::new(codec.width(), 0, &[64], &mut rng);
        let mut step_rng = Rng::seed_from_u64(5);
        let mut cfg = TrainConfig::vtrain(1);
        cfg.batch_size = 64;
        cfg.epochs = 1;
        black_box(
            train_gan(&g, &d, &data, &spans, &cfg, &mut step_rng)
                .expect("bench iteration trains"),
        );
    };
    bench("gan_epoch_mlp_telemetry_off", 10, epoch);
    let rec: Arc<MemoryRecorder> = Arc::new(MemoryRecorder::new());
    daisy_telemetry::with_recorder(rec, || {
        bench("gan_epoch_mlp_telemetry_on", 10, epoch);
    });

    // Phase-profiler overhead (PR 8 acceptance): the same epoch with
    // profiling disabled (one relaxed atomic load per scope) and
    // enabled (two Instant reads + a BTreeMap update per scope).
    daisy_telemetry::profile::set_enabled(false);
    bench("gan_epoch_mlp_profile_off", 10, epoch);
    daisy_telemetry::profile::set_enabled(true);
    bench("gan_epoch_mlp_profile_on", 10, epoch);
    daisy_telemetry::profile::set_enabled(false);
    daisy_telemetry::profile::reset();
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== kernel microbenchmarks (host logical cores: {host_cores}) ==");
    bench_matmul_references();
    for threads in [1usize, 4] {
        bench_matmul(threads);
        bench_conv(threads);
        bench_reductions(threads);
        bench_gan_epoch(threads);
    }
    bench_transform();
    bench_telemetry_overhead();
    pool::set_threads(1);
    if let Some(path) = daisy_telemetry::knobs::raw("DAISY_BENCH_JSON") {
        let path = if path == "1" || path.is_empty() {
            "BENCH_kernels.json".to_string()
        } else {
            path
        };
        write_json(&path, host_cores);
    }
}
