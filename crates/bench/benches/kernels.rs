//! Microbenchmarks for the hot kernels under the study: matmul,
//! convolution, record transformation, and one full GAN training step
//! per network family. These quantify the ablation trade-offs called
//! out in DESIGN.md (tape autodiff cost, LSTM's sequential overhead vs
//! MLP). Timing is a hand-rolled median-of-samples loop so the suite
//! carries no external benchmarking dependency.

use daisy_core::discriminator::{Discriminator, MlpDiscriminator};
use daisy_core::generator::{Generator, LstmGenerator, MlpGenerator};
use daisy_core::sampler::TrainingData;
use daisy_core::train::train_gan;
use daisy_core::{output_head::softmax_spans, NetworkKind, TrainConfig};
use daisy_data::{RecordCodec, TransformConfig};
use daisy_datasets::by_name;
use daisy_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Instant;

/// Runs `f` repeatedly and reports the median per-iteration time over
/// `samples` timed samples (after one warm-up call).
fn bench(name: &str, samples: usize, mut f: impl FnMut()) {
    f(); // warm-up
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    println!("{name:<36} {median:>10.3} ms/iter  ({samples} samples)");
}

fn bench_matmul() {
    let mut rng = Rng::seed_from_u64(0);
    let a = Tensor::randn(&[128, 256], &mut rng);
    let b = Tensor::randn(&[256, 128], &mut rng);
    bench("matmul_128x256x128", 20, || {
        black_box(a.matmul(&b));
    });
    let c = Tensor::randn(&[128, 64], &mut rng);
    bench("matmul_tn_128x256x128", 20, || {
        black_box(a.matmul_tn(&c));
    });
}

fn bench_conv() {
    let mut rng = Rng::seed_from_u64(1);
    let x = Tensor::randn(&[32, 8, 8, 8], &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
    bench("conv2d_32x8x8x8_k3", 20, || {
        black_box(daisy_tensor::conv::conv2d(&x, &w, 1, 1));
    });
}

fn bench_transform() {
    let spec = by_name("Adult").unwrap();
    let table = spec.generate(2000, 2);
    let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
    bench("encode_adult_2000_gn_ht", 10, || {
        black_box(codec.encode_table(&table));
    });
    let encoded = codec.encode_table(&table);
    bench("decode_adult_2000_gn_ht", 10, || {
        black_box(codec.decode_table(&encoded));
    });
}

fn bench_gan_step() {
    let spec = by_name("Adult").unwrap();
    let table = spec.generate(1000, 3);
    let codec = RecordCodec::fit(&table, &TransformConfig::gn_ht());
    let data = TrainingData::from_table(&table, &codec);
    let spans = softmax_spans(&codec.output_blocks());
    for network in [NetworkKind::Mlp, NetworkKind::Lstm] {
        let name = format!("gan_iteration_{}", network.name().to_lowercase());
        bench(&name, 10, || {
            let mut rng = Rng::seed_from_u64(4);
            let g: Box<dyn Generator> = match network {
                NetworkKind::Mlp => Box::new(MlpGenerator::new(
                    24,
                    0,
                    &[64, 64],
                    codec.output_blocks(),
                    &mut rng,
                )),
                _ => Box::new(LstmGenerator::new(
                    24,
                    0,
                    64,
                    32,
                    codec.output_blocks(),
                    &mut rng,
                )),
            };
            let d: Box<dyn Discriminator> =
                Box::new(MlpDiscriminator::new(codec.width(), 0, &[64], &mut rng));
            let mut step_rng = Rng::seed_from_u64(5);
            let mut cfg = TrainConfig::vtrain(1);
            cfg.batch_size = 64;
            cfg.epochs = 1;
            black_box(
                train_gan(g.as_ref(), d.as_ref(), &data, &spans, &cfg, &mut step_rng)
                    .expect("bench iteration trains"),
            );
        });
    }
}

fn main() {
    println!("== kernel microbenchmarks ==");
    bench_matmul();
    bench_conv();
    bench_transform();
    bench_gan_step();
}
