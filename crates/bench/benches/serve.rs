//! Serving-plane throughput: a live `daisy-serve` TCP server answering
//! streamed generation requests from 1, 2, and 4 concurrent clients.
//! One "round" is every client fetching one full response; the median
//! round time over the samples yields rows/sec at that concurrency.
//! Timing is the same hand-rolled median-of-samples loop as the kernel
//! bench — no external benchmarking dependency.
//!
//! Set `DAISY_BENCH_JSON=<path>` to also write the measurements as JSON
//! (the committed `BENCH_serve.json` at the repo root is produced this
//! way); see `docs/SERVING.md` for the runbook and how to read it.

use daisy_core::{NetworkKind, Synthesizer, SynthesizerConfig, TrainConfig};
use daisy_datasets::by_name;
use daisy_serve::{fetch_raw, Request, ServeConfig, Server};
use daisy_telemetry::json::Json;
use std::hint::black_box;
use std::net::SocketAddr;
use std::sync::Mutex;
// daisy-lint: allow(D002) -- benchmarks measure wall time by design
use std::time::Instant;

/// Rows each client asks for per request.
const ROWS_PER_REQUEST: u64 = 4096;

/// One recorded measurement, mirrored into the JSON report.
struct Rec {
    name: String,
    clients: usize,
    start_row: u64,
    median_ms: f64,
    rows_per_sec: f64,
    samples: usize,
}

static RECORDS: Mutex<Vec<Rec>> = Mutex::new(Vec::new());

/// Relative cost of the hardened path (deadlines armed) over a server
/// with deadlines disabled, single client: `(t_on - t_off) / t_off`.
static DEADLINE_OVERHEAD: Mutex<Option<f64>> = Mutex::new(None);

/// Trains a small model on the Adult stand-in and saves it where the
/// server can load it. Training cost is irrelevant here — only the
/// serving path is measured.
fn train_model(path: &std::path::Path) {
    let spec = by_name("Adult").unwrap();
    let table = spec.generate(600, 3);
    let mut tc = TrainConfig::vtrain(10);
    tc.batch_size = 32;
    tc.epochs = 1;
    let mut cfg = SynthesizerConfig::new(NetworkKind::Mlp, tc);
    cfg.g_hidden = vec![32];
    cfg.d_hidden = vec![32];
    let fitted = Synthesizer::fit(&table, &cfg);
    fitted.save(path).expect("bench model saves");
}

/// One round: `clients` threads each fetch rows
/// `start_row..ROWS_PER_REQUEST` of their stream concurrently
/// (distinct seeds, so responses are independent byte streams);
/// returns once every response has fully arrived.
fn round(addr: SocketAddr, clients: usize, start_row: u64) {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            // daisy-lint: allow(D003) -- bench client threads; responses are seed-reproducible
            std::thread::spawn(move || {
                let req = Request::new(0xBE5C + c as u64, ROWS_PER_REQUEST)
                    .resuming_at(start_row);
                let bytes = fetch_raw(addr, &req).expect("bench fetch succeeds");
                assert!(!bytes.is_empty());
                black_box(bytes.len())
            })
        })
        .collect();
    for h in handles {
        h.join().expect("bench client thread joins");
    }
}

/// Runs `samples` timed rounds (after one warm-up round) and records
/// the median round time plus the implied throughput. Returns the
/// median for derived comparisons.
fn bench_case(
    addr: SocketAddr,
    name: String,
    clients: usize,
    start_row: u64,
    samples: usize,
) -> f64 {
    round(addr, clients, start_row); // warm-up
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        // daisy-lint: allow(D002) -- benchmark timing loop
        let start = Instant::now();
        round(addr, clients, start_row);
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    let rows = (clients as u64 * (ROWS_PER_REQUEST - start_row)) as f64;
    let rows_per_sec = rows / (median / 1e3);
    println!(
        "{name:<40} {median:>10.3} ms/round  {rows_per_sec:>12.0} rows/sec  ({samples} samples)"
    );
    RECORDS.lock().unwrap().push(Rec {
        name,
        clients,
        start_row,
        median_ms: median,
        rows_per_sec,
        samples,
    });
    median
}

/// Builds the JSON report through the shared telemetry [`Json`] writer,
/// same shape and serializer as `BENCH_kernels.json`.
fn bench_report(host_cores: usize) -> Json {
    let recs = RECORDS.lock().unwrap();
    let mut root = vec![
        (
            "generated_by".to_string(),
            Json::Str(
                "DAISY_BENCH_JSON=BENCH_serve.json cargo bench -p daisy-bench --bench serve"
                    .to_string(),
            ),
        ),
        ("host_logical_cores".to_string(), Json::Num(host_cores as f64)),
        (
            "unit".to_string(),
            Json::Str(
                "median ms per round (all clients served once); rows_per_sec = \
clients * rows_per_request / median"
                    .to_string(),
            ),
        ),
        (
            "rows_per_request".to_string(),
            Json::Num(ROWS_PER_REQUEST as f64),
        ),
    ];
    if host_cores < 4 {
        root.push((
            "note".to_string(),
            Json::Str(format!(
                "host exposes only {host_cores} logical core(s); multi-client rows \
measure time-sliced connection handling, not parallel speedup — re-run on a 4+ core \
host to observe scaling"
            )),
        ));
    }
    if let Some(overhead) = *DEADLINE_OVERHEAD.lock().unwrap() {
        root.push((
            "deadline_overhead_pct".to_string(),
            Json::Num((overhead * 1e4).round() / 1e2),
        ));
    }
    let entries = recs
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(r.name.clone())),
                ("clients".to_string(), Json::Num(r.clients as f64)),
                ("start_row".to_string(), Json::Num(r.start_row as f64)),
                (
                    "median_ms".to_string(),
                    Json::Num((r.median_ms * 1e3).round() / 1e3),
                ),
                (
                    "rows_per_sec".to_string(),
                    Json::Num(r.rows_per_sec.round()),
                ),
                ("samples".to_string(), Json::Num(r.samples as f64)),
            ])
        })
        .collect();
    root.push(("entries".to_string(), Json::Arr(entries)));
    Json::Obj(root)
}

fn write_json(path: &str, host_cores: usize) {
    let report = bench_report(host_cores);
    let mut body = report.to_pretty();
    body.push('\n');
    match std::fs::write(path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!(
            "warning: DAISY_BENCH_JSON={path} is not writable ({e}); report not saved"
        ),
    }
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== serving throughput (host logical cores: {host_cores}) ==");
    let model_path = std::env::temp_dir().join("daisy-bench-serve-model.bin");
    train_model(&model_path);
    let cfg = ServeConfig {
        max_conn: 8,
        ..ServeConfig::default()
    };
    let server =
        Server::bind(&model_path, "127.0.0.1:0", cfg).expect("bench server binds");
    let addr = server.local_addr().expect("bench server has an address");
    // daisy-lint: allow(D003) -- accept loop thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = server.run();
    });
    let mut hardened_c1 = 0.0;
    for clients in [1usize, 2, 4] {
        let median = bench_case(
            addr,
            format!("serve_{ROWS_PER_REQUEST}rows_c{clients}"),
            clients,
            0,
            10,
        );
        if clients == 1 {
            hardened_c1 = median;
        }
    }
    // Resumed fetch: the server fast-forwards the seeded stream to the
    // midpoint, then serves the back half — the row measures resume
    // cost relative to plain fetches of the same volume.
    bench_case(
        addr,
        format!("serve_{ROWS_PER_REQUEST}rows_c1_resume_half"),
        1,
        ROWS_PER_REQUEST / 2,
        10,
    );
    // Overhead of the hardened path: the same single-client round
    // against a server with per-connection deadlines disabled.
    let cfg_off = ServeConfig {
        max_conn: 8,
        timeout_ms: 0,
        ..ServeConfig::default()
    };
    let server_off =
        Server::bind(&model_path, "127.0.0.1:0", cfg_off).expect("bench server binds");
    let addr_off = server_off.local_addr().expect("bench server has an address");
    // daisy-lint: allow(D003) -- accept loop thread; responses are seed-reproducible
    std::thread::spawn(move || {
        let _ = server_off.run();
    });
    let off_c1 = bench_case(
        addr_off,
        format!("serve_{ROWS_PER_REQUEST}rows_c1_deadlines_off"),
        1,
        0,
        10,
    );
    let overhead = (hardened_c1 - off_c1) / off_c1;
    println!(
        "deadline overhead (c1, armed vs off): {:+.2}% of round time",
        overhead * 1e2
    );
    *DEADLINE_OVERHEAD.lock().unwrap() = Some(overhead);
    std::fs::remove_file(&model_path).ok();
    if let Some(path) = daisy_telemetry::knobs::raw("DAISY_BENCH_JSON") {
        let path = if path == "1" || path.is_empty() {
            "BENCH_serve.json".to_string()
        } else {
            path
        };
        write_json(&path, host_cores);
    }
}
