//! Table 3: synthetic data utility for classification across generator
//! networks (CNN / MLP / LSTM) and transformation schemes (sn/od,
//! sn/ht, gn/od, gn/ht) on Adult, CovType (low-dimensional) and
//! Census, SAT (high-dimensional).
//!
//! Expected shape (paper Finding 1): LSTM with the right transformation
//! beats MLP on the low-dimensional datasets, the advantage shrinks on
//! high-dimensional ones, and CNN is the clear loser. CNN is skipped on
//! the multi-class datasets (CovType, SAT), as in the paper.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::by_name;

fn main() {
    banner(
        "Table 3: neural networks x transformations (F1 Diff, lower is better)",
        "Columns: per-classifier F1 difference vs a model trained on real data.",
    );
    for dataset in ["Adult", "CovType", "Census", "SAT"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, test) = prepare(&spec, 42);
        println!(
            "-- {dataset} ({}-dimensional, {} train rows) --",
            if spec.n_attrs() <= 20 { "low" } else { "high" },
            train.n_rows()
        );

        let mut design_points: Vec<(String, daisy_core::SynthesizerConfig)> = Vec::new();
        // CNN is only applicable to binary-label datasets here (the
        // tableGAN code the paper used was binary-only).
        if train.n_classes() == 2 {
            design_points.push((
                "CNN".into(),
                gan_config(
                    NetworkKind::Cnn,
                    TransformConfig::sn_od(),
                    TrainConfig::vtrain(0),
                    1,
                ),
            ));
        }
        for network in [NetworkKind::Mlp, NetworkKind::Lstm] {
            for transform in TransformConfig::all() {
                design_points.push((
                    format!("{} {}", network.name(), transform.short_name()),
                    gan_config(network, transform, TrainConfig::vtrain(0), 1),
                ));
            }
        }

        let mut rows = Vec::new();
        for (name, cfg) in &design_points {
            let synthetic = fit_and_generate(&train, cfg, 7);
            let diffs = f1_diffs(&train, &synthetic, &test);
            let mut row = vec![name.clone()];
            row.extend(diffs.iter().map(|(_, d)| fmt(*d)));
            rows.push(row);
        }
        let headers = ["design", "DT10", "DT30", "RF10", "RF20", "AB", "LR"];
        print_table(&headers, &rows);
        println!();
    }
}
