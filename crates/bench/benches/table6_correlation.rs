//! Table 6: effect of attribute correlation on synthesis performance —
//! F1 Diff (DT30) and wall-clock synthesis time for CNN / MLP / LSTM on
//! SDataNum-{0.5,0.9} and SDataCat-{0.5,0.9}.
//!
//! Expected shape: LSTM wins on utility at every correlation level but
//! costs the most time; CNN is fastest and worst.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::{SDataCat, SDataNum, Skew};
use daisy_eval::classification_utility;
use daisy_tensor::Rng;
// daisy-lint: allow(D002) -- benchmarks measure wall time by design
use std::time::Instant;

fn main() {
    banner(
        "Table 6: attribute correlation (DT30 F1 Diff, synthesis time)",
        "Simulated datasets with correlation 0.5 / 0.9.",
    );
    let s = scale();
    let mut datasets = Vec::new();
    for corr in [0.5, 0.9] {
        let t = SDataNum { correlation: corr, skew: Skew::Balanced }.generate(s.rows, 3);
        datasets.push((format!("SDataNum-{corr}"), t));
    }
    for diag in [0.5, 0.9] {
        let t = SDataCat::new(diag, Skew::Balanced).generate(s.rows, 4);
        datasets.push((format!("SDataCat-{diag}"), t));
    }

    let mut rows = Vec::new();
    for (name, table) in &datasets {
        let (train, _valid, test) = split(table, 5);
        let mut row = vec![name.clone()];
        let mut times = Vec::new();
        for network in [NetworkKind::Cnn, NetworkKind::Mlp, NetworkKind::Lstm] {
            let transform = if network == NetworkKind::Cnn {
                TransformConfig::sn_od()
            } else {
                TransformConfig::gn_ht()
            };
            let cfg = gan_config(network, transform, TrainConfig::vtrain(0), 81);
            // daisy-lint: allow(D002) -- benchmark timing loop
            let t0 = Instant::now();
            let synthetic = fit_and_generate(&train, &cfg, 5);
            times.push(t0.elapsed().as_secs_f64());
            let mut rng = Rng::seed_from_u64(6);
            let diff = classification_utility(
                &train, &synthetic, &test,
                || Box::new(daisy_eval::DecisionTree::new(30)),
                &mut rng,
            )
            .f1_diff;
            row.push(fmt(diff));
        }
        for t in times {
            row.push(format!("{t:.1}s"));
        }
        rows.push(row);
    }
    print_table(
        &["dataset", "CNN", "MLP", "LSTM", "t(CNN)", "t(MLP)", "t(LSTM)"],
        &rows,
    );
}
