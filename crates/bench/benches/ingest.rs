//! Microbenchmarks for the out-of-core data plane: streaming CSV
//! ingestion into a sealed chunk store, store-backed chunk reads under
//! the `DAISY_MEM_BUDGET` cache, and chunked minibatch sampling against
//! the fully-resident reference path.
//!
//! Timing is the workspace's hand-rolled median-of-samples loop (no
//! external benchmarking dependency).

use daisy_core::sampler::{BatchSource, TrainingData};
use daisy_core::ChunkedTrainingData;
use daisy_data::{
    ingest_csv, ChunkSource, ChunkStore, IngestConfig, RecordCodec, RowErrorPolicy,
    TransformConfig,
};
use daisy_datasets::by_name;
use daisy_tensor::Rng;
use std::hint::black_box;
use std::path::PathBuf;
// daisy-lint: allow(D002) -- benchmarks measure wall time by design
use std::time::Instant;

/// Runs `f` repeatedly and reports the median per-iteration time over
/// `samples` timed samples (after one warm-up call).
fn bench(name: &str, samples: usize, mut f: impl FnMut()) {
    f(); // warm-up
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        // daisy-lint: allow(D002) -- benchmark timing loop
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = times[times.len() / 2];
    println!("{name:<44} {median:>10.3} ms/iter  ({samples} samples)");
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("daisy-bench-ingest")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn main() {
    const ROWS: usize = 20_000;
    const CHUNK_ROWS: usize = 2048;
    let dir = scratch("main");
    let csv = dir.join("adult.csv");
    let spec = by_name("Adult").expect("dataset");
    let table = spec.generate(ROWS, 11);
    {
        let file = std::fs::File::create(&csv).expect("create csv");
        daisy_data::csv::write_csv(&table, std::io::BufWriter::new(file)).expect("write csv");
    }
    println!("== ingest / out-of-core benchmarks ({ROWS} rows, {CHUNK_ROWS} rows/chunk) ==");

    let cfg = IngestConfig {
        chunk_rows: CHUNK_ROWS,
        label: Some("label".to_string()),
        policy: RowErrorPolicy::Strict,
        ..IngestConfig::default()
    };

    // Fresh end-to-end ingestion: schema inference + two streaming
    // passes + durable chunk seals.
    let fresh = dir.join("fresh");
    bench("ingest_csv_fresh", 5, || {
        let _ = std::fs::remove_dir_all(&fresh);
        black_box(ingest_csv(&csv, &fresh, &cfg).expect("ingest"));
    });

    // Journal replay of a completed ingest (idempotence check cost).
    let done = dir.join("done");
    ingest_csv(&csv, &done, &cfg).expect("ingest");
    bench("ingest_csv_already_complete", 10, || {
        black_box(ingest_csv(&csv, &done, &cfg).expect("replay"));
    });

    // The in-memory reference load for scale.
    bench("read_csv_resident", 5, || {
        let file = std::fs::File::open(&csv).expect("open csv");
        black_box(
            daisy_data::csv::read_csv(std::io::BufReader::new(file), Some("label"))
                .expect("read csv"),
        );
    });

    // Chunk reads through the budgeted cache: first pass decodes from
    // disk, second pass is resident.
    let store = ChunkStore::open(&done).expect("open store");
    bench("chunk_scan_cold_and_cached", 10, || {
        for k in 0..store.n_chunks() {
            black_box(ChunkSource::chunk(&store, k).expect("chunk"));
        }
    });

    // Minibatch sampling: resident gather vs chunked gather + encode.
    let config = TransformConfig::gn_ht();
    let codec = RecordCodec::fit_chunks(&store, &config).expect("fit");
    let resident = TrainingData::from_table(&table, &codec);
    let streamed = ChunkedTrainingData::new(&store, &codec).expect("streamed");
    bench("sample_random_resident_b256", 30, || {
        let mut rng = Rng::seed_from_u64(3);
        black_box(resident.sample_random(256, true, &mut rng));
    });
    bench("sample_random_chunked_b256", 30, || {
        let mut rng = Rng::seed_from_u64(3);
        black_box(BatchSource::sample_random(&streamed, 256, true, &mut rng).expect("sample"));
    });

    let _ = std::fs::remove_dir_all(&dir);
}
