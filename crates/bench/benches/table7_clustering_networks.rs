//! Table 7: clustering utility DiffCST (K-Means NMI difference) across
//! generator networks and transformations on the seven labeled
//! datasets.
//!
//! Expected shape (Finding 8 / §7.4): LSTM gn/ht tends to preserve the
//! clustering structure best; CNN is worst where applicable.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::by_name;
use daisy_eval::clustering_utility;
use daisy_tensor::Rng;

fn main() {
    banner(
        "Table 7: clustering utility DiffCST (lower is better)",
        "K-Means + NMI difference between real and synthetic tables.",
    );
    let mut rows = Vec::new();
    for dataset in ["HTRU2", "Adult", "CovType", "Digits", "Anuran", "Census", "SAT"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, _test) = prepare(&spec, 42);
        let mut row = vec![dataset.to_string()];
        // CNN only on binary datasets (as in Table 3).
        if train.n_classes() == 2 {
            let cfg = gan_config(
                NetworkKind::Cnn,
                TransformConfig::sn_od(),
                TrainConfig::vtrain(0),
                101,
            );
            let synthetic = fit_and_generate(&train, &cfg, 9);
            let mut rng = Rng::seed_from_u64(10);
            row.push(fmt(clustering_utility(&train, &synthetic, &mut rng)));
        } else {
            row.push("-".into());
        }
        for network in [NetworkKind::Mlp, NetworkKind::Lstm] {
            for transform in [TransformConfig::sn_ht(), TransformConfig::gn_ht()] {
                let cfg = gan_config(network, transform, TrainConfig::vtrain(0), 101);
                let synthetic = fit_and_generate(&train, &cfg, 9);
                let mut rng = Rng::seed_from_u64(10);
                row.push(fmt(clustering_utility(&train, &synthetic, &mut rng)));
            }
        }
        rows.push(row);
    }
    print_table(
        &["dataset", "CNN", "MLP sn/ht", "MLP gn/ht", "LSTM sn/ht", "LSTM gn/ht"],
        &rows,
    );
}
