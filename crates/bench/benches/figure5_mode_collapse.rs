//! Figure 5: strategies against mode collapse — WTrain (Wasserstein),
//! Simplified (vanilla training with a deliberately small
//! discriminator), and plain VTrain, compared by per-classifier F1 Diff
//! on Adult, CovType, SAT and Census.
//!
//! Expected shape (Finding 3): Simplified beats VTrain on most
//! classifiers, and WTrain shows no advantage over vanilla training —
//! unlike in image synthesis.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::by_name;

fn main() {
    banner(
        "Figure 5: mode-collapse remedies (F1 Diff, lower is better)",
        "WTrain vs Simplified-D vs VTrain, LSTM generator, gn/ht.",
    );
    for dataset in ["Adult", "CovType", "SAT", "Census"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, test) = prepare(&spec, 42);
        println!("-- {dataset} --");
        let strategies: Vec<(&str, daisy_core::SynthesizerConfig)> = vec![
            (
                "WTrain",
                gan_config(
                    NetworkKind::Lstm,
                    TransformConfig::gn_ht(),
                    TrainConfig::wtrain(0),
                    21,
                ),
            ),
            ("Simplified", {
                let mut cfg = gan_config(
                    NetworkKind::Lstm,
                    TransformConfig::gn_ht(),
                    TrainConfig::vtrain(0),
                    21,
                );
                cfg.simplified_d = true;
                cfg
            }),
            (
                "VTrain",
                gan_config(
                    NetworkKind::Lstm,
                    TransformConfig::gn_ht(),
                    TrainConfig::vtrain(0),
                    21,
                ),
            ),
        ];
        let mut rows = Vec::new();
        for (name, cfg) in &strategies {
            let synthetic = fit_and_generate(&train, cfg, 3);
            let dup = daisy_core::duplicate_fraction(&synthetic, 20);
            let diffs = f1_diffs(&train, &synthetic, &test);
            let mut row = vec![name.to_string()];
            row.extend(diffs.iter().map(|(_, d)| fmt(*d)));
            row.push(fmt(dup));
            rows.push(row);
        }
        print_table(
            &["strategy", "DT10", "DT30", "RF10", "RF20", "AB", "LR", "dup-frac"],
            &rows,
        );
        println!();
    }
}
