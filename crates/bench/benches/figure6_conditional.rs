//! Figure 6: conditional GAN on the skewed real datasets — VGAN
//! (unconditional), CGAN-V (conditional, random sampling) and CGAN-C
//! (conditional, label-aware sampling) by per-classifier F1 Diff.
//!
//! Expected shape (Finding 4): CGAN-V gains little (sometimes loses)
//! over VGAN; CGAN-C (label-aware sampling) is the variant that helps
//! under label skew.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::by_name;

fn main() {
    banner(
        "Figure 6: conditional GAN under label skew (F1 Diff, lower is better)",
        "VGAN vs CGAN-V (random sampling) vs CGAN-C (label-aware).",
    );
    for dataset in ["Adult", "CovType", "Census", "Anuran"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, test) = prepare(&spec, 42);
        println!("-- {dataset} (skewness {:.1}) --", train.label_skewness());
        let variants: Vec<(&str, TrainConfig)> = vec![
            ("VGAN", TrainConfig::vtrain(0)),
            ("CGAN-V", TrainConfig::cgan_v(0)),
            ("CGAN-C", TrainConfig::ctrain(0)),
        ];
        let mut rows = Vec::new();
        for (name, train_cfg) in variants {
            let cfg = gan_config(
                NetworkKind::Mlp,
                TransformConfig::gn_ht(),
                train_cfg,
                31,
            );
            let synthetic = fit_and_generate(&train, &cfg, 5);
            let diffs = f1_diffs(&train, &synthetic, &test);
            let mut row = vec![name.to_string()];
            row.extend(diffs.iter().map(|(_, d)| fmt(*d)));
            rows.push(row);
        }
        print_table(&["variant", "DT10", "DT30", "RF10", "RF20", "AB", "LR"], &rows);
        println!();
    }
}
