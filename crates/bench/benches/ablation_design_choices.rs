//! Ablation study over the implementation-level design choices that
//! DESIGN.md §6 calls out (beyond the paper's own design space): the KL
//! warm-up term, the simplified discriminator, generator batch
//! normalization (and its interaction with conditional label-aware
//! sampling), and the number of discriminator steps per generator step.
//!
//! Reported per variant: DT10 F1 Diff, duplicate fraction (mode
//! collapse), correlation fidelity, and FD preservation gap.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, Synthesizer, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::by_name;
use daisy_eval::{classification_utility, correlation_fidelity, fd_preservation_gap};
use daisy_tensor::Rng;

fn main() {
    banner(
        "Ablation: implementation design choices (Adult)",
        "Lower is better in every column.",
    );
    let spec = by_name("Adult").unwrap();
    let (train, _valid, test) = prepare(&spec, 42);

    let base = || {
        gan_config(
            NetworkKind::Mlp,
            TransformConfig::gn_ht(),
            TrainConfig::vtrain(0),
            191,
        )
    };
    let mut variants: Vec<(&str, daisy_core::SynthesizerConfig)> = Vec::new();
    variants.push(("baseline (VTrain, KL=1, BN, D x1)", base()));
    variants.push(("no KL warm-up", {
        let mut c = base();
        c.train.kl_weight = 0.0;
        c
    }));
    variants.push(("simplified D", {
        let mut c = base();
        c.simplified_d = true;
        c
    }));
    variants.push(("no generator BN", {
        let mut c = base();
        c.g_batchnorm = false;
        c
    }));
    variants.push(("3 D-steps per G-step", {
        let mut c = base();
        c.train.d_steps = 3;
        c
    }));
    variants.push(("PacGAN packing (pac=2)", {
        let mut c = base();
        c.train.pac = 2;
        c
    }));
    variants.push(("conditional (CTrain, BN auto-off)", {
        let mut c = base();
        c.train = TrainConfig::ctrain(0);
        c.train.iterations = scale().iterations;
        c.train.batch_size = scale().batch;
        c
    }));

    let mut rows = Vec::new();
    for (name, cfg) in &variants {
        let fitted = Synthesizer::fit(&train, cfg);
        let mut rng = Rng::seed_from_u64(7);
        let synthetic = fitted.generate(train.n_rows(), &mut rng);
        let mut rng2 = Rng::seed_from_u64(8);
        let diff = classification_utility(
            &train,
            &synthetic,
            &test,
            || Box::new(daisy_eval::DecisionTree::new(10)),
            &mut rng2,
        )
        .f1_diff;
        let dup = daisy_core::duplicate_fraction(&synthetic, 20);
        let corr = correlation_fidelity(&train, &synthetic);
        let fd = fd_preservation_gap(&train, &synthetic, 0.8)
            .map(fmt)
            .unwrap_or_else(|| "-".into());
        rows.push(vec![name.to_string(), fmt(diff), fmt(dup), fmt(corr), fd]);
    }
    print_table(
        &["variant", "DT10 Diff", "dup-frac", "corr-gap", "FD-gap"],
        &rows,
    );
}
