//! Table 9: clustering utility DiffCST of VAE, PrivBayes-ε and GAN on
//! the seven labeled datasets.
//!
//! Expected shape (Finding 8): GAN beats the baselines by 1–2 orders of
//! magnitude on preserving clustering structure.

use daisy_baselines::{PrivBayes, PrivBayesConfig, Vae, VaeConfig};
use daisy_bench::harness::*;
use daisy_datasets::by_name;
use daisy_eval::clustering_utility;
use daisy_tensor::Rng;

fn main() {
    banner(
        "Table 9: clustering utility DiffCST by method (lower is better)",
        "VAE vs PB-eps vs GAN.",
    );
    let s = scale();
    let mut rows = Vec::new();
    for dataset in ["HTRU2", "CovType", "Adult", "Digits", "Anuran", "Census", "SAT"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, _test) = prepare(&spec, 42);
        let mut row = vec![dataset.to_string()];
        let vae = Vae::fit(
            &train,
            &VaeConfig {
                iterations: s.vae_iterations,
                hidden: vec![s.hidden * 2],
                ..VaeConfig::default()
            },
        );
        let mut eval_rng = Rng::seed_from_u64(14);
        row.push(fmt(clustering_utility(
            &train,
            &synthesize_like(&vae, &train, 13),
            &mut eval_rng,
        )));
        for eps in [0.2, 0.4, 0.8, 1.6] {
            let pb = PrivBayes::fit(&train, &PrivBayesConfig::with_epsilon(eps));
            let mut eval_rng = Rng::seed_from_u64(14);
            row.push(fmt(clustering_utility(
                &train,
                &synthesize_like(&pb, &train, 13),
                &mut eval_rng,
            )));
        }
        let cfg = default_gan_for(&train, 121);
        let synthetic = fit_and_generate(&train, &cfg, 13);
        let mut eval_rng = Rng::seed_from_u64(14);
        row.push(fmt(clustering_utility(&train, &synthetic, &mut eval_rng)));
        rows.push(row);
    }
    print_table(
        &["dataset", "VAE", "PB-0.2", "PB-0.4", "PB-0.8", "PB-1.6", "GAN"],
        &rows,
    );
}
