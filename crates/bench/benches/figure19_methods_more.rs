//! Figure 19 (Appendix B.3): methods comparison on the remaining
//! datasets — Anuran, Digits and HTRU2.

use daisy_baselines::{PrivBayes, PrivBayesConfig, Vae, VaeConfig};
use daisy_bench::harness::*;
use daisy_datasets::by_name;

fn main() {
    banner(
        "Figure 19: methods on Anuran / Digits / HTRU2 (F1 Diff)",
        "VAE vs PB-eps vs GAN.",
    );
    let s = scale();
    for dataset in ["Anuran", "Digits", "HTRU2"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, test) = prepare(&spec, 42);
        println!("-- {dataset} --");
        let mut methods: Vec<(String, daisy_data::Table)> = Vec::new();
        let vae = Vae::fit(
            &train,
            &VaeConfig {
                iterations: s.vae_iterations,
                hidden: vec![s.hidden * 2],
                ..VaeConfig::default()
            },
        );
        methods.push(("VAE".into(), synthesize_like(&vae, &train, 31)));
        for eps in [0.2, 0.4, 0.8, 1.6] {
            let pb = PrivBayes::fit(&train, &PrivBayesConfig::with_epsilon(eps));
            methods.push((format!("PB-{eps}"), synthesize_like(&pb, &train, 31)));
        }
        let cfg = default_gan_for(&train, 181);
        methods.push(("GAN".into(), fit_and_generate(&train, &cfg, 31)));
        let mut rows = Vec::new();
        for (mname, synthetic) in &methods {
            let diffs = f1_diffs(&train, synthetic, &test);
            let mut row = vec![mname.clone()];
            row.extend(diffs.iter().map(|(_, d)| fmt(*d)));
            rows.push(row);
        }
        print_table(&["method", "DT10", "DT30", "RF10", "RF20", "AB", "LR"], &rows);
        println!();
    }
}
