//! Figures 16–18 (Appendix B.2): additional robustness studies —
//! hyper-parameter sweeps on SAT and Census (Figure 16) and the effect
//! of replacing the normal discriminator with the simplified one under
//! the same sweeps (Figures 17–18, here on Adult and SAT).
//!
//! Expected shape: the simplified discriminator markedly reduces the
//! fraction of collapsed settings for the LSTM generator.

use daisy_bench::harness::*;
use daisy_core::model_selection::default_candidates;
use daisy_core::{NetworkKind, Synthesizer, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::by_name;
use daisy_eval::f1_on_test;
use daisy_tensor::Rng;

fn sweep(dataset: &str, network: NetworkKind, simplified: bool) {
    let spec = by_name(dataset).unwrap();
    let (train, _valid, test) = prepare(&spec, 42);
    println!(
        "-- {}-based G, {} D ({dataset}) --",
        network.name(),
        if simplified { "simplified" } else { "normal" }
    );
    let mut rows = Vec::new();
    for (pi, hp) in default_candidates().iter().enumerate() {
        let base = gan_config(
            network,
            TransformConfig::gn_ht(),
            TrainConfig::vtrain(0),
            171 + pi as u64,
        );
        let mut cfg = hp.apply(&base);
        cfg.train.iterations = scale().sweep_iterations;
        cfg.train.epochs = 10;
        cfg.simplified_d = simplified;
        clamp_for_quick(&mut cfg);
        let mut fitted = Synthesizer::fit(&train, &cfg);
        let mut row = vec![format!("param-{}", pi + 1)];
        for e in 0..fitted.n_snapshots() {
            let mut rng = Rng::seed_from_u64(200 + e as u64);
            let snapshot = fitted.generate_from_snapshot(e, train.n_rows(), &mut rng);
            row.push(fmt(f1_on_test(
                &snapshot,
                &test,
                &train,
                || Box::new(daisy_eval::DecisionTree::new(10)),
                &mut rng,
            )));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("setting".to_string())
        .chain((1..=10).map(|e| format!("ep{e}")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&hdr_refs, &rows);
    println!();
}

fn main() {
    banner(
        "Figures 16-18: robustness sweeps (DT10 F1 per epoch)",
        "Hyper-parameter settings on SAT/Census; normal vs simplified D.",
    );
    // Figure 16: LSTM and MLP on SAT and Census.
    for dataset in ["SAT", "Census"] {
        sweep(dataset, NetworkKind::Lstm, false);
        sweep(dataset, NetworkKind::Mlp, false);
    }
    // Figures 17-18: normal vs simplified D for the LSTM generator
    // (the SAT normal-D sweep is already printed above).
    sweep("Adult", NetworkKind::Lstm, false);
    sweep("Adult", NetworkKind::Lstm, true);
    sweep("SAT", NetworkKind::Lstm, true);
}
