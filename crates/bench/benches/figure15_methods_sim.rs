//! Figure 15 (Appendix B.3): methods comparison on the simulated
//! datasets — VAE, PrivBayes-ε and GAN per classifier on SDataNum and
//! SDataCat.

use daisy_baselines::{PrivBayes, PrivBayesConfig, Vae, VaeConfig};
use daisy_bench::harness::*;
use daisy_datasets::{SDataCat, SDataNum, Skew};

fn main() {
    banner(
        "Figure 15: methods on simulated data (F1 Diff)",
        "VAE vs PB-eps vs GAN.",
    );
    let s = scale();
    let datasets = vec![
        (
            "SDataNum".to_string(),
            SDataNum { correlation: 0.5, skew: Skew::Balanced }.generate(s.rows, 5),
        ),
        (
            "SDataCat".to_string(),
            SDataCat::new(0.5, Skew::Balanced).generate(s.rows, 6),
        ),
    ];
    for (name, table) in &datasets {
        let (train, _valid, test) = split(table, 23);
        println!("-- {name} --");
        let mut methods: Vec<(String, daisy_data::Table)> = Vec::new();
        let vae = Vae::fit(
            &train,
            &VaeConfig {
                iterations: s.vae_iterations,
                ..VaeConfig::default()
            },
        );
        methods.push(("VAE".into(), synthesize_like(&vae, &train, 29)));
        for eps in [0.2, 0.4, 0.8, 1.6] {
            let pb = PrivBayes::fit(&train, &PrivBayesConfig::with_epsilon(eps));
            methods.push((format!("PB-{eps}"), synthesize_like(&pb, &train, 29)));
        }
        let cfg = default_gan_for(&train, 161);
        methods.push(("GAN".into(), fit_and_generate(&train, &cfg, 29)));
        let mut rows = Vec::new();
        for (mname, synthetic) in &methods {
            let diffs = f1_diffs(&train, synthetic, &test);
            let mut row = vec![mname.clone()];
            row.extend(diffs.iter().map(|(_, d)| fmt(*d)));
            rows.push(row);
        }
        print_table(&["method", "DT10", "DT30", "RF10", "RF20", "AB", "LR"], &rows);
        println!();
    }
}
