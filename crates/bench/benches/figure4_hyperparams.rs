//! Figure 4: robustness of MLP- vs LSTM-based generators to
//! hyper-parameter settings — F1 score of a DT10 classifier trained on
//! the synthetic snapshot after each of 10 epochs, for each candidate
//! setting (param-1 … param-6).
//!
//! Expected shape (Finding 2): the MLP generator stays at a moderate F1
//! across settings, while several LSTM settings collapse (F1 → 0 after
//! early epochs).

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, Synthesizer, TrainConfig};
use daisy_core::model_selection::default_candidates;
use daisy_data::TransformConfig;
use daisy_datasets::by_name;
use daisy_eval::f1_on_test;
use daisy_tensor::Rng;

fn main() {
    banner(
        "Figure 4: F1 vs epoch under hyper-parameter settings",
        "Rows: param settings; columns: epochs 1..10 (DT10 F1 on test).",
    );
    for dataset in ["Adult", "CovType"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, test) = prepare(&spec, 42);
        for network in [NetworkKind::Lstm, NetworkKind::Mlp] {
            println!("-- {}-based G ({dataset}) --", network.name());
            let mut rows = Vec::new();
            for (pi, hp) in default_candidates().iter().enumerate() {
                let base = gan_config(
                    network,
                    TransformConfig::gn_ht(),
                    TrainConfig::vtrain(0),
                    11 + pi as u64,
                );
                let mut cfg = hp.apply(&base);
                // Keep the iteration budget fixed; the candidates vary
                // rates/capacity as in the paper. Quick mode clamps
                // capacity so single-core runs stay tractable.
                cfg.train.iterations = scale().sweep_iterations;
                cfg.train.epochs = 10;
                clamp_for_quick(&mut cfg);
                let mut fitted = Synthesizer::fit(&train, &cfg);
                let mut row = vec![format!("param-{}", pi + 1)];
                for e in 0..fitted.n_snapshots() {
                    let mut rng = Rng::seed_from_u64(100 + e as u64);
                    let snapshot_table =
                        fitted.generate_from_snapshot(e, train.n_rows(), &mut rng);
                    let f1 = f1_on_test(
                        &snapshot_table,
                        &test,
                        &train,
                        || Box::new(daisy_eval::DecisionTree::new(10)),
                        &mut rng,
                    );
                    row.push(fmt(f1));
                }
                rows.push(row);
            }
            let headers: Vec<String> = std::iter::once("setting".to_string())
                .chain((1..=10).map(|e| format!("ep{e}")))
                .collect();
            let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            print_table(&hdr_refs, &rows);
            println!();
        }
    }
}
