//! Figures 13–14 (Appendix B.5): value-distribution fidelity of
//! synthetic attributes — numerical attributes (SDataNum) under
//! MLP/LSTM x {sn, gn} compared by Wasserstein distance and quantile
//! summaries (the violin-plot data), and categorical attributes
//! (SDataCat) under one-hot vs ordinal by total variation distance.
//!
//! Expected shape (Appendix finding): GMM normalization beats simple
//! normalization on multi-modal numerics; one-hot beats ordinal on
//! categoricals.

use daisy_bench::harness::*;
use daisy_core::{NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::{SDataCat, SDataNum, Skew};
use daisy_eval::{attribute_fidelity, AttributeFidelity};

fn main() {
    banner(
        "Figures 13-14: attribute distribution fidelity",
        "Numeric: Wasserstein distance; categorical: total variation.",
    );
    let s = scale();

    println!("-- Figure 13: numerical attributes (SDataNum-0.5) --");
    let table = SDataNum { correlation: 0.5, skew: Skew::Balanced }.generate(s.rows, 3);
    let (train, _valid, _test) = split(&table, 21);
    let mut rows = Vec::new();
    for network in [NetworkKind::Mlp, NetworkKind::Lstm] {
        for transform in [TransformConfig::sn_ht(), TransformConfig::gn_ht()] {
            let cfg = gan_config(network, transform, TrainConfig::vtrain(0), 151);
            let synthetic = fit_and_generate(&train, &cfg, 23);
            let fidelity = attribute_fidelity(&train, &synthetic);
            for f in fidelity {
                if let AttributeFidelity::Numerical { name, wasserstein, real, synthetic } = f {
                    rows.push(vec![
                        format!("{} {}", network.name(), transform.short_name()),
                        name,
                        fmt(wasserstein),
                        format!("[{:.1},{:.1},{:.1}]", real.q25, real.median, real.q75),
                        format!("[{:.1},{:.1},{:.1}]", synthetic.q25, synthetic.median, synthetic.q75),
                    ]);
                }
            }
        }
    }
    print_table(&["design", "attr", "W1", "real q25/50/75", "syn q25/50/75"], &rows);

    println!();
    println!("-- Figure 14: categorical attributes (SDataCat-0.5) --");
    let table = SDataCat::new(0.5, Skew::Balanced).generate(s.rows, 4);
    let (train, _valid, _test) = split(&table, 22);
    let mut rows = Vec::new();
    for transform in [TransformConfig::gn_ht(), TransformConfig::gn_od()] {
        let cfg = gan_config(NetworkKind::Mlp, transform, TrainConfig::vtrain(0), 151);
        let synthetic = fit_and_generate(&train, &cfg, 23);
        for f in attribute_fidelity(&train, &synthetic) {
            if let AttributeFidelity::Categorical { name, tv } = f {
                rows.push(vec![
                    transform.short_name().to_string(),
                    name,
                    fmt(tv),
                ]);
            }
        }
    }
    print_table(&["encoding", "attr", "total variation"], &rows);
}
