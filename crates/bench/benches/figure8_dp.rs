//! Figure 8: differential privacy — DPGAN vs PrivBayes across privacy
//! levels ε ∈ {0.1, 0.2, 0.4, 0.8, 1.6}, DT10 F1 Diff on Adult and
//! CovType.
//!
//! Expected shape (Finding 7): DPGAN cannot beat PrivBayes at
//! essentially any ε — gradient noise cripples the adversarial
//! training.

use daisy_baselines::{PrivBayes, PrivBayesConfig};
use daisy_bench::harness::*;
use daisy_core::{DpConfig, NetworkKind, TrainConfig};
use daisy_data::TransformConfig;
use daisy_datasets::by_name;
use daisy_eval::classification_utility;
use daisy_tensor::Rng;

fn main() {
    banner(
        "Figure 8: provable privacy (DT10 F1 Diff at each epsilon)",
        "DPGAN (Wasserstein + gradient noise) vs PrivBayes.",
    );
    let s = scale();
    for dataset in ["Adult", "CovType"] {
        let spec = by_name(dataset).unwrap();
        let (train, _valid, test) = prepare(&spec, 42);
        println!("-- {dataset} --");
        let mut rows = Vec::new();
        for eps in [0.1, 0.2, 0.4, 0.8, 1.6] {
            let pb = PrivBayes::fit(&train, &PrivBayesConfig::with_epsilon(eps));
            let pb_syn = synthesize_like(&pb, &train, 5);
            let dp = DpConfig::for_epsilon(eps, s.iterations * 3, s.batch, train.n_rows());
            let cfg = gan_config(
                NetworkKind::Mlp,
                TransformConfig::gn_ht(),
                TrainConfig::dptrain(0, dp),
                71,
            );
            let gan_syn = fit_and_generate(&train, &cfg, 5);
            let mut rng = Rng::seed_from_u64(99);
            let pb_diff = classification_utility(
                &train, &pb_syn, &test,
                || Box::new(daisy_eval::DecisionTree::new(10)),
                &mut rng,
            )
            .f1_diff;
            let dpgan_diff = classification_utility(
                &train, &gan_syn, &test,
                || Box::new(daisy_eval::DecisionTree::new(10)),
                &mut rng,
            )
            .f1_diff;
            rows.push(vec![format!("{eps}"), fmt(pb_diff), fmt(dpgan_diff)]);
        }
        print_table(&["epsilon", "PB", "DPGAN"], &rows);
        println!();
    }
}
