//! The central registry of `DAISY_*` environment knobs.
//!
//! Every environment variable the workspace reads is declared here —
//! name, default, owning subsystem, one-line doc — and every read goes
//! through [`raw`] / [`raw_os`] / [`flag`], the workspace's only
//! sanctioned `env::var` call sites for `DAISY_*` names. The workspace
//! lint (rule K001) enforces the discipline: a direct
//! `env::var("DAISY_…")` outside this module, a `DAISY_*` name
//! mentioned anywhere in the tree but missing from [`KNOBS`], or a
//! registered knob absent from `docs/OBSERVABILITY.md` is a finding.
//!
//! Parsing and fallback behaviour deliberately stay at the call sites
//! (the pool warns once on a malformed `DAISY_THREADS`, the serving
//! plane warns per variable, the store silently falls back) — the
//! registry owns the *name*, the *default*, and the *documentation*,
//! not the error policy. `daisy knobs` dumps this table, so operators
//! and CI see the same source of truth the code compiles against.

/// One registered environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knob {
    /// The environment variable name (`DAISY_*`).
    pub name: &'static str,
    /// Human-readable default used when the variable is unset or
    /// malformed (`-` when "unset" itself is the meaningful default).
    pub default: &'static str,
    /// The subsystem that reads the knob (crate or binary name).
    pub owner: &'static str,
    /// One-line description of the knob's effect.
    pub doc: &'static str,
}

/// Every `DAISY_*` environment variable read anywhere in the
/// workspace. Keep sorted by name within each owner group; `daisy
/// knobs` prints the table in this order.
pub const KNOBS: &[Knob] = &[
    Knob {
        name: "DAISY_TRACE",
        default: "-",
        owner: "telemetry",
        doc: "Path of the JSONL trace sink; unset or empty disables tracing.",
    },
    Knob {
        name: "DAISY_PROFILE",
        default: "0",
        owner: "telemetry",
        doc: "Any value but empty or 0 enables the wall-clock phase profiler.",
    },
    Knob {
        name: "DAISY_THREADS",
        default: "-",
        owner: "tensor",
        doc: "Compute-pool worker threads; unset or malformed falls back to the available parallelism.",
    },
    Knob {
        name: "DAISY_MEM_BUDGET",
        default: "268435456",
        owner: "data",
        doc: "Resident-chunk cache budget in bytes for the columnar store (default 256 MiB).",
    },
    Knob {
        name: "DAISY_CKPT_EVERY",
        default: "1",
        owner: "core",
        doc: "Write a training checkpoint every N-th clean epoch boundary.",
    },
    Knob {
        name: "DAISY_SERVE_MAX_CONN",
        default: "4",
        owner: "serve",
        doc: "Maximum concurrent serving connections.",
    },
    Knob {
        name: "DAISY_SERVE_MAX_ROWS",
        default: "100000000",
        owner: "serve",
        doc: "Maximum rows a single serving request may ask for.",
    },
    Knob {
        name: "DAISY_SERVE_TIMEOUT_MS",
        default: "30000",
        owner: "serve",
        doc: "Per-connection socket deadline in milliseconds; 0 disables the deadline.",
    },
    Knob {
        name: "DAISY_SERVE_DRAIN_MS",
        default: "5000",
        owner: "serve",
        doc: "Grace window for in-flight streams after SIGTERM before the server exits.",
    },
    Knob {
        name: "DAISY_SERVE_SHED",
        default: "0",
        owner: "serve",
        doc: "Set to 1 to refuse (shed) connections beyond the limit instead of queueing them.",
    },
    Knob {
        name: "DAISY_SERVE_ADMIN",
        default: "-",
        owner: "serve",
        doc: "host:port of the admin/metrics HTTP endpoint; unset disables it.",
    },
    Knob {
        name: "DAISY_BENCH_JSON",
        default: "-",
        owner: "bench",
        doc: "Path where benches append machine-readable JSONL results; unset disables.",
    },
    Knob {
        name: "DAISY_FULL",
        default: "0",
        owner: "bench",
        doc: "Set to 1 to run benches at full paper scale instead of the quick CI scale.",
    },
    Knob {
        name: "DAISY_ROWS",
        default: "-",
        owner: "bench",
        doc: "Overrides the bench harness row count; unset uses the scale preset.",
    },
    Knob {
        name: "DAISY_ITERS",
        default: "-",
        owner: "bench",
        doc: "Overrides the bench harness training iterations; unset uses the scale preset.",
    },
    Knob {
        name: "DAISY_SWEEP_DIR",
        default: "daisy-sweep",
        owner: "examples",
        doc: "Working directory of the checkpoint_sweep example (journal, checkpoints, traces).",
    },
    Knob {
        name: "DAISY_SWEEP_ITERS",
        default: "1500",
        owner: "examples",
        doc: "Training iterations per sweep cell in the checkpoint_sweep example.",
    },
    Knob {
        name: "DAISY_SWEEP_KILL_AT",
        default: "-",
        owner: "examples",
        doc: "Step at which the checkpoint_sweep example kills itself to exercise crash recovery; unset never.",
    },
];

/// Looks a knob up by name.
pub fn find(name: &str) -> Option<&'static Knob> {
    KNOBS.iter().find(|k| k.name == name)
}

/// Reads a registered knob's raw value from the environment. `None`
/// when unset (or not valid UTF-8) — interpreting the value, and
/// falling back to the registered default, stays with the caller.
///
/// Debug builds assert the name is registered, so a new knob cannot be
/// read before it is declared in [`KNOBS`].
pub fn raw(name: &str) -> Option<String> {
    debug_assert!(find(name).is_some(), "unregistered knob {name}");
    std::env::var(name).ok()
}

/// [`raw`] without the UTF-8 requirement, for knobs that name
/// filesystem paths (`DAISY_TRACE`).
pub fn raw_os(name: &str) -> Option<std::ffi::OsString> {
    debug_assert!(find(name).is_some(), "unregistered knob {name}");
    std::env::var_os(name)
}

/// `true` when a registered boolean knob is set to exactly `1` — the
/// workspace-wide convention for opt-in flags (`DAISY_FULL`,
/// `DAISY_SERVE_SHED`).
pub fn flag(name: &str) -> bool {
    raw(name).is_some_and(|v| v == "1")
}

/// Renders the registry as the stable, machine-parseable table `daisy
/// knobs` prints: one knob per line, `name<TAB>default<TAB>owner<TAB>doc`,
/// in [`KNOBS`] order. The first tab-separated token of every line is
/// the knob name — the contract the registry round-trip test and the
/// CI docs-coverage gate parse against.
pub fn render() -> String {
    let mut out = String::new();
    for k in KNOBS {
        out.push_str(k.name);
        out.push('\t');
        out.push_str(k.default);
        out.push('\t');
        out.push_str(k.owner);
        out.push('\t');
        out.push_str(k.doc);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_daisy_prefixed() {
        for (i, k) in KNOBS.iter().enumerate() {
            assert!(k.name.starts_with("DAISY_"), "{}", k.name);
            assert!(!k.doc.is_empty() && !k.owner.is_empty() && !k.default.is_empty());
            for other in &KNOBS[i + 1..] {
                assert_ne!(k.name, other.name);
            }
        }
    }

    #[test]
    fn render_lines_lead_with_the_name() {
        let rendered = render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), KNOBS.len());
        for (line, k) in lines.iter().zip(KNOBS) {
            assert_eq!(line.split('\t').next(), Some(k.name));
            assert_eq!(line.split('\t').count(), 4);
        }
    }

    #[test]
    fn lookup_and_flag_honour_registration() {
        assert!(find("DAISY_TRACE").is_some());
        assert!(find("DAISY_NOPE").is_none());
        // An unset opt-in flag reads as off.
        assert!(!flag("DAISY_SERVE_SHED") || std::env::var("DAISY_SERVE_SHED").is_ok());
    }
}
