//! Zero-dependency structured telemetry for the daisy workspace.
//!
//! The layer has two planes:
//!
//! - A **deterministic event stream** ([`Event`]): typed records of
//!   what the run *did* — epochs, guard trips, recoveries, fault
//!   firings, model selection, bench cells. Event identity is logical
//!   time (epoch / step / sequence number), never wall-clock; optional
//!   wall-clock measurements ride in a separate, strippable `wall`
//!   sub-object. For a fixed seed, the deterministic view of a trace
//!   ([`trace::deterministic_view`]) is byte-identical across runs
//!   *and across `DAISY_THREADS` settings* — the same contract the
//!   compute pool already guarantees for numeric results.
//! - An **aggregate metrics registry** ([`metrics`]): counters, gauges
//!   and fixed-bucket histograms updated via relaxed atomics from any
//!   thread (pool job counts, kernel dispatch sizes). These values
//!   legitimately vary with thread count, so they only enter the event
//!   stream as an explicitly non-deterministic snapshot
//!   ([`emit_metrics_snapshot`]).
//!
//! # Routing
//!
//! Every [`emit`] goes to exactly one [`Recorder`]: the calling
//! thread's innermost scoped recorder ([`with_recorder`], used by
//! tests) if one is installed, otherwise the process-global recorder —
//! a [`JsonlSink`] created lazily from `DAISY_TRACE=<path>`. With
//! neither, [`enabled`] is `false` and instrumented call sites skip
//! event construction entirely, so an untraced run pays one relaxed
//! atomic load per site.
//!
//! # Quick start
//!
//! ```
//! use daisy_telemetry::{emit, field, with_recorder, MemoryRecorder};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(MemoryRecorder::new());
//! with_recorder(rec.clone(), || {
//!     emit("epoch", vec![field("epoch", 0usize), field("d_loss", 0.5f64)]);
//! });
//! assert_eq!(rec.count("epoch"), 1);
//! ```
//!
//! See `docs/OBSERVABILITY.md` for the runbook and [`schema`] for the
//! event vocabulary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod expose;
pub mod json;
pub mod knobs;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod report;
pub mod schema;
pub mod sink;
pub mod trace;

pub use event::{field, Event, Fields, Value};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder};
pub use report::RunReport;
pub use sink::JsonlSink;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The process-global sink, created on first use from `DAISY_TRACE`.
/// `None` when the variable is unset, empty, or names an unwritable
/// path (the latter warns once on stderr instead of failing silently).
static GLOBAL: OnceLock<Option<Arc<JsonlSink>>> = OnceLock::new();

/// Number of live scoped recorders across all threads; a cheap upper
/// bound used by [`enabled`] so untraced production runs never touch
/// thread-local storage.
static LOCALS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Innermost-wins stack of scoped recorders for this thread.
    static STACK: RefCell<Vec<Arc<dyn Recorder>>> = const { RefCell::new(Vec::new()) };
    /// Events emitted from this thread, ever; spans diff it for their
    /// logical duration.
    static EMITTED: Cell<u64> = const { Cell::new(0) };
}

fn global() -> Option<&'static Arc<JsonlSink>> {
    GLOBAL
        .get_or_init(|| {
            let path = knobs::raw_os("DAISY_TRACE")?;
            if path.is_empty() {
                return None;
            }
            match JsonlSink::create(&path) {
                Ok(sink) => Some(Arc::new(sink)),
                Err(e) => {
                    eprintln!(
                        "warning: DAISY_TRACE={} is not writable ({e}); tracing disabled",
                        path.to_string_lossy()
                    );
                    None
                }
            }
        })
        .as_ref()
}

/// Forces initialization of the global sink from `DAISY_TRACE` and
/// reports whether a trace file is being written. Binaries call this
/// at startup so a misconfigured path warns immediately rather than at
/// the first emission; library code never needs to.
pub fn init_from_env() -> bool {
    global().is_some()
}

/// `true` when at least one recorder might receive events. This is the
/// fast gate for hot paths: one relaxed load (plus one initialized
/// `OnceLock` read) when tracing is off.
pub fn enabled() -> bool {
    LOCALS.load(Ordering::Relaxed) > 0 || global().is_some()
}

/// Runs `f` with `recorder` installed as this thread's innermost
/// recorder; every [`emit`] from inside `f` (on this thread) goes to it
/// instead of the global sink. Scopes nest; the recorder is removed on
/// unwind as well as on return. This is how tests and the bench
/// harness capture traces without touching process-global state.
pub fn with_recorder<R>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
            LOCALS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    STACK.with(|s| s.borrow_mut().push(recorder));
    LOCALS.fetch_add(1, Ordering::Relaxed);
    let _guard = Guard;
    f()
}

/// Emits a deterministic event with the given name and fields. Sugar
/// for [`emit_event`] with [`Event::new`].
pub fn emit(name: &'static str, fields: Fields) {
    emit_event(Event::new(name, fields));
}

/// Routes one event to this thread's innermost scoped recorder, or to
/// the global sink when no scope is active. Drops the event when
/// neither exists.
pub fn emit_event(event: Event) {
    let local: Option<Arc<dyn Recorder>> = if LOCALS.load(Ordering::Relaxed) > 0 {
        STACK.with(|s| s.borrow().last().cloned())
    } else {
        None
    };
    let recorder: &dyn Recorder = match (&local, global()) {
        (Some(rec), _) => rec.as_ref(),
        (None, Some(sink)) => sink.as_ref(),
        (None, None) => return,
    };
    EMITTED.with(|c| c.set(c.get() + 1));
    recorder.record(event);
}

/// An open span, created by [`span_start`]. Call [`Span::end`] to emit
/// the matching close event; dropping without `end` emits nothing.
pub struct Span {
    name: &'static str,
    start_events: u64,
    start: Instant,
}

/// Opens a span: emits a [`schema::SPAN_START`] event carrying `fields`
/// and returns a handle whose [`Span::end`] emits
/// [`schema::SPAN_END`] with the span's *logical* duration — the number
/// of events this thread emitted while the span was open — plus the
/// wall-clock milliseconds in the strippable `wall` sub-object.
pub fn span_start(name: &'static str, mut fields: Fields) -> Span {
    if enabled() {
        fields.insert(0, field("span", name));
        emit_event(Event::new(schema::SPAN_START, fields));
    }
    Span {
        name,
        start_events: EMITTED.with(|c| c.get()),
        start: Instant::now(),
    }
}

impl Span {
    /// Closes the span (see [`span_start`]).
    pub fn end(self) {
        if !enabled() {
            return;
        }
        let events = EMITTED.with(|c| c.get()).saturating_sub(self.start_events);
        let ms = self.start.elapsed().as_secs_f64() * 1000.0;
        emit_event(
            Event::new(
                schema::SPAN_END,
                vec![field("span", self.name), field("events", events)],
            )
            .with_wall(vec![field("ms", ms)]),
        );
    }
}

/// A wall-clock stopwatch for instrumented call sites *outside* this
/// crate.
///
/// The workspace lint (rule D002) confines `std::time` to
/// `crates/telemetry/` so wall-clock can never leak onto the
/// deterministic event plane by accident. Code that legitimately needs
/// a wall measurement for a `wall` sub-object or an `"nd":true` event —
/// the serving plane timing a request, say — goes through this type,
/// keeping `Instant` itself inside the fence.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1000.0
    }
}

/// Sleeps the calling thread for `ms` milliseconds. Lives here because
/// this crate is the workspace's one sanctioned wall-clock plane (lint
/// D002): pollers like `daisy top` borrow it instead of reaching for
/// `std::time` themselves.
pub fn sleep_ms(ms: u64) {
    std::thread::sleep(Duration::from_millis(ms));
}

/// Builds a [`Duration`] of `ms` milliseconds. The socket-deadline
/// companion to [`sleep_ms`]: code outside this crate that needs a
/// `Duration` for `set_read_timeout`-style APIs — the serving plane's
/// per-connection deadlines, say — borrows it from the sanctioned
/// wall-clock plane instead of naming `std::time` itself (lint D002).
pub fn duration_ms(ms: u64) -> Duration {
    Duration::from_millis(ms)
}

/// Emits the current state of every registered metric as one
/// [`schema::METRICS_SNAPSHOT`] event marked non-deterministic (metrics values
/// depend on thread count and scheduling, so the deterministic view
/// drops the snapshot wholesale).
pub fn emit_metrics_snapshot() {
    if !enabled() {
        return;
    }
    emit_event(Event::new(schema::METRICS_SNAPSHOT, metrics::snapshot_fields()).non_deterministic());
}

/// Emits the phase-profiler registry as one [`schema::PROFILE`] event
/// marked non-deterministic (the profiler measures wall time, which
/// the deterministic trace view must never see). Per phase path the
/// event carries `<path>.calls`, `<path>.total_ms`, `<path>.self_ms`.
/// A no-op when tracing is off or no phase has been recorded.
pub fn emit_profile_snapshot() {
    if !enabled() {
        return;
    }
    let stats = profile::snapshot();
    if stats.is_empty() {
        return;
    }
    let mut fields = Fields::new();
    for s in &stats {
        fields.push(field(&format!("{}.calls", s.path), s.calls));
        fields.push(field(
            &format!("{}.total_ms", s.path),
            s.total_ns as f64 / 1e6,
        ));
        fields.push(field(
            &format!("{}.self_ms", s.path),
            s.self_ns as f64 / 1e6,
        ));
    }
    emit_event(Event::new(schema::PROFILE, fields).non_deterministic());
}

/// Opens a phase scope for the rest of the enclosing block: the named
/// phase is recorded into [`profile`]'s registry when the block exits.
/// The argument must be a string literal naming a segment in
/// [`schema::PHASES`] — the workspace lint (rule S004) enforces this,
/// which is why call sites should prefer the macro over
/// [`profile::scope`].
///
/// ```
/// # daisy_telemetry::profile::set_enabled(false);
/// {
///     daisy_telemetry::phase_scope!("fit");
///     // ... work attributed to the `fit` phase ...
/// }
/// ```
#[macro_export]
macro_rules! phase_scope {
    ($name:literal) => {
        let _daisy_phase_scope = $crate::profile::scope($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_recorder_captures_and_restores() {
        let outer = Arc::new(MemoryRecorder::new());
        let inner = Arc::new(MemoryRecorder::new());
        with_recorder(outer.clone(), || {
            emit("a", vec![]);
            with_recorder(inner.clone(), || {
                emit("b", vec![]);
            });
            emit("c", vec![]);
        });
        assert_eq!(outer.count("a"), 1);
        assert_eq!(outer.count("b"), 0);
        assert_eq!(outer.count("c"), 1);
        assert_eq!(inner.count("b"), 1);
    }

    #[test]
    fn scoped_recorder_pops_on_panic() {
        let rec = Arc::new(MemoryRecorder::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_recorder(rec.clone(), || panic!("boom"));
        }));
        assert!(result.is_err());
        // The stack unwound cleanly: a fresh scope still works.
        let rec2 = Arc::new(MemoryRecorder::new());
        with_recorder(rec2.clone(), || emit("after", vec![]));
        assert_eq!(rec2.count("after"), 1);
    }

    #[test]
    fn spans_measure_logical_duration() {
        let rec = Arc::new(MemoryRecorder::new());
        with_recorder(rec.clone(), || {
            let span = span_start("train", vec![field("epochs", 2usize)]);
            emit("epoch", vec![field("epoch", 0usize)]);
            emit("epoch", vec![field("epoch", 1usize)]);
            span.end();
        });
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name, schema::SPAN_START);
        assert_eq!(events[3].name, schema::SPAN_END);
        assert_eq!(events[3].get("events"), Some(&Value::U64(2)));
        // Wall-clock lives only in the wall sub-object.
        assert!(events[3].get("ms").is_none());
        assert!(!events[3].wall.is_empty());
    }

    #[test]
    fn metrics_snapshot_is_marked_non_deterministic() {
        metrics::counter("test.lib.jobs").add(3);
        let rec = Arc::new(MemoryRecorder::new());
        with_recorder(rec.clone(), emit_metrics_snapshot);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].nd);
        let view = trace::deterministic_view(&rec.to_jsonl()).unwrap();
        assert!(view.is_empty());
    }

    #[test]
    fn memory_recorder_jsonl_validates() {
        let rec = Arc::new(MemoryRecorder::new());
        with_recorder(rec.clone(), || {
            emit("x", vec![field("v", 1.5f64)]);
            emit("y", vec![field("s", "text")]);
        });
        let stats = trace::validate_trace(&rec.to_jsonl()).unwrap();
        assert_eq!(stats.events, 2);
    }
}
