//! The phase profiler: rolling wall-time attribution per named phase.
//!
//! A *phase* is a named region of work opened with [`scope`] (or the
//! [`phase_scope!`](crate::phase_scope) macro) and closed when the
//! returned guard drops. Phases nest: a scope opened while another is
//! live on the same thread records under the parent's path joined with
//! `/` — e.g. `fit/epoch/matmul_nt`. For every path the registry keeps
//! three numbers: call count, **total** nanoseconds (guard lifetime),
//! and **self** nanoseconds (total minus time spent in child scopes),
//! so `daisy top` and `/profile` can rank phases by where time is
//! actually burned rather than by whose stack frame it happened under.
//!
//! Wall-clock is non-deterministic by nature, so profile data never
//! touches the deterministic event plane: snapshots are emitted only as
//! `"nd":true` events ([`crate::emit_profile_snapshot`]) which
//! [`crate::trace::deterministic_view`] drops wholesale. The
//! byte-identical trace contract is unaffected by profiling being on.
//!
//! Profiling is off by default. When off, [`scope`] is one relaxed
//! atomic load and returns an inert guard — cheap enough to leave in
//! kernel entry points. Enable with [`set_enabled`] or
//! `DAISY_PROFILE=1` (read by [`init_from_env`]).
//!
//! Phase names are a closed vocabulary ([`crate::schema::PHASES`]);
//! the workspace lint (rule S004) checks every literal passed to
//! [`scope`] / `phase_scope!` against it so the profiler, `daisy top`,
//! and the docs cannot drift apart silently.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Master switch. All [`scope`] calls are inert while this is `false`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Aggregated counters for one phase path.
#[derive(Debug, Default, Clone, Copy)]
struct Agg {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
}

/// Path → aggregate. A `BTreeMap` keeps snapshot order deterministic
/// given identical keys (lint rule D001 bans `HashMap` iteration).
static REGISTRY: Mutex<BTreeMap<String, Agg>> = Mutex::new(BTreeMap::new());

/// One live scope on this thread's stack.
struct Frame {
    /// Length to truncate the thread path back to when this frame pops.
    path_truncate: usize,
    /// Nanoseconds spent in already-closed child scopes.
    child_ns: u64,
}

/// Per-thread phase state: the current `/`-joined path plus one frame
/// per live scope.
#[derive(Default)]
struct ThreadState {
    path: String,
    frames: Vec<Frame>,
    /// Closed-scope aggregates not yet merged into [`REGISTRY`].
    /// Flushed under the global lock only when the thread's stack
    /// empties (its root scope closes), so the steady-state cost of a
    /// scope drop is one thread-local map update — no lock, and no
    /// allocation once a path has been seen on this thread.
    local: BTreeMap<String, Agg>,
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

/// Turns profiling on or off process-wide. Scopes already open keep the
/// enable decision they were created with, so toggling mid-flight never
/// corrupts the per-thread stack.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when phase scopes are recording.
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables profiling when `DAISY_PROFILE` is set to anything but `0`
/// or the empty string; returns whether profiling is now on. Binaries
/// call this once at startup next to [`crate::init_from_env`].
pub fn init_from_env() -> bool {
    match crate::knobs::raw("DAISY_PROFILE") {
        Some(v) if !v.is_empty() && v != "0" => set_enabled(true),
        _ => {}
    }
    profiling_enabled()
}

/// A point-in-time reading of one phase path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// `/`-joined phase path, e.g. `fit/epoch/matmul_nt`.
    pub path: String,
    /// Number of times the scope closed.
    pub calls: u64,
    /// Total guard-lifetime nanoseconds.
    pub total_ns: u64,
    /// Total minus nanoseconds attributed to child scopes.
    pub self_ns: u64,
}

/// An RAII guard for one phase. Created by [`scope`]; records on drop.
/// Inert (a no-op on drop) when profiling was disabled at creation.
#[must_use = "a phase scope records on drop; binding it to _ closes it immediately"]
pub struct PhaseScope {
    live: Option<LiveScope>,
}

struct LiveScope {
    start: Instant,
    /// Stack depth after this scope pushed; used to detect (and heal)
    /// out-of-order drops without panicking in a Drop impl.
    depth: usize,
}

/// Opens the phase `name` under the calling thread's current phase
/// path. Prefer the [`phase_scope!`](crate::phase_scope) macro at call
/// sites — the lint checks its literals against
/// [`crate::schema::PHASES`].
pub fn scope(name: &'static str) -> PhaseScope {
    if !ENABLED.load(Ordering::Relaxed) {
        return PhaseScope { live: None };
    }
    let depth = STATE.with(|s| {
        let mut s = s.borrow_mut();
        let path_truncate = s.path.len();
        if !s.path.is_empty() {
            s.path.push('/');
        }
        s.path.push_str(name);
        s.frames.push(Frame {
            path_truncate,
            child_ns: 0,
        });
        s.frames.len()
    });
    PhaseScope {
        live: Some(LiveScope {
            start: Instant::now(),
            depth,
        }),
    }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed_ns = live.start.elapsed().as_nanos() as u64;
        let flush = STATE.with(|cell| {
            let mut borrow = cell.borrow_mut();
            let s = &mut *borrow;
            if s.frames.len() < live.depth {
                // An outer scope already unwound past us (out-of-order
                // drop); our time was folded into it. Nothing to do.
                return None;
            }
            // Fold any child scopes that leaked (e.g. via mem::forget)
            // into this frame rather than corrupting the path.
            while s.frames.len() > live.depth {
                if let Some(f) = s.frames.pop() {
                    s.path.truncate(f.path_truncate);
                }
            }
            let frame = s.frames.pop()?;
            let self_ns = elapsed_ns.saturating_sub(frame.child_ns);
            if let Some(parent) = s.frames.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
            }
            match s.local.get_mut(&s.path) {
                Some(agg) => {
                    agg.calls += 1;
                    agg.total_ns = agg.total_ns.saturating_add(elapsed_ns);
                    agg.self_ns = agg.self_ns.saturating_add(self_ns);
                }
                None => {
                    let path = s.path.clone();
                    s.local.insert(
                        path,
                        Agg {
                            calls: 1,
                            total_ns: elapsed_ns,
                            self_ns,
                        },
                    );
                }
            }
            s.path.truncate(frame.path_truncate);
            if s.frames.is_empty() {
                Some(std::mem::take(&mut s.local))
            } else {
                None
            }
        });
        if let Some(local) = flush {
            let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            for (path, agg) in local {
                let slot = reg.entry(path).or_default();
                slot.calls += agg.calls;
                slot.total_ns = slot.total_ns.saturating_add(agg.total_ns);
                slot.self_ns = slot.self_ns.saturating_add(agg.self_ns);
            }
        }
    }
}

/// Every phase recorded so far, in path order. Includes the calling
/// thread's not-yet-flushed aggregates, so a snapshot taken under a
/// live root scope (e.g. at fit end, inside the `fit` phase) still
/// sees every closed descendant; other threads' phases appear once
/// their root scope closes.
pub fn snapshot() -> Vec<PhaseStat> {
    let mut merged: BTreeMap<String, Agg> =
        REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clone();
    STATE.with(|cell| {
        for (path, agg) in &cell.borrow().local {
            let slot = merged.entry(path.clone()).or_default();
            slot.calls += agg.calls;
            slot.total_ns = slot.total_ns.saturating_add(agg.total_ns);
            slot.self_ns = slot.self_ns.saturating_add(agg.self_ns);
        }
    });
    merged
        .iter()
        .map(|(path, agg)| PhaseStat {
            path: path.clone(),
            calls: agg.calls,
            total_ns: agg.total_ns,
            self_ns: agg.self_ns,
        })
        .collect()
}

/// The `n` hottest phases by self time, descending (ties break on path
/// so the order is stable).
pub fn top_by_self_time(n: usize) -> Vec<PhaseStat> {
    let mut stats = snapshot();
    stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    stats.truncate(n);
    stats
}

/// Clears the registry (call counts and times), including the calling
/// thread's unflushed aggregates. For tests and bench isolation; live
/// scopes on any thread are unaffected and will record into the fresh
/// registry when they close.
pub fn reset() {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.clear();
    drop(reg);
    STATE.with(|cell| cell.borrow_mut().local.clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_for_ns(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(0u64);
        }
    }

    /// Profiler tests share one process-global registry and enable
    /// flag, so they serialize on a lock and reset around themselves.
    fn isolated(f: impl FnOnce()) {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        f();
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        isolated(|| {
            set_enabled(false);
            {
                let _s = scope("fit");
            }
            assert!(snapshot().is_empty());
        });
    }

    #[test]
    fn nested_scopes_build_slash_paths_with_self_time() {
        isolated(|| {
            {
                let _outer = scope("fit");
                spin_for_ns(200_000);
                {
                    let _inner = scope("epoch");
                    spin_for_ns(200_000);
                }
            }
            let stats = snapshot();
            let paths: Vec<&str> = stats.iter().map(|s| s.path.as_str()).collect();
            assert_eq!(paths, vec!["fit", "fit/epoch"]);
            let fit = &stats[0];
            let epoch = &stats[1];
            assert_eq!(fit.calls, 1);
            assert_eq!(epoch.calls, 1);
            assert!(fit.total_ns >= epoch.total_ns, "parent covers child");
            assert!(
                fit.self_ns <= fit.total_ns - epoch.total_ns + 1_000_000,
                "child time is subtracted from parent self time"
            );
            assert_eq!(epoch.self_ns, epoch.total_ns, "leaf self == total");
        });
    }

    #[test]
    fn sibling_scopes_aggregate_calls() {
        isolated(|| {
            let _outer = scope("fit");
            for _ in 0..3 {
                let _inner = scope("epoch");
            }
            drop(scope("epoch"));
            let stats = snapshot();
            let epoch = stats
                .iter()
                .find(|s| s.path == "fit/epoch")
                .expect("aggregated path present");
            assert_eq!(epoch.calls, 4);
        });
    }

    #[test]
    fn top_by_self_time_ranks_descending() {
        isolated(|| {
            {
                let _a = scope("matmul");
                spin_for_ns(2_000_000);
            }
            {
                let _b = scope("conv2d");
                spin_for_ns(100_000);
            }
            let top = top_by_self_time(1);
            assert_eq!(top.len(), 1);
            assert_eq!(top[0].path, "matmul");
        });
    }

    #[test]
    fn out_of_order_drop_heals_the_stack() {
        isolated(|| {
            let outer = scope("fit");
            let inner = scope("epoch");
            drop(outer); // wrong order: outer first
            drop(inner); // must not panic or corrupt the path
            {
                let _next = scope("generate");
            }
            let paths: Vec<String> = snapshot().into_iter().map(|s| s.path).collect();
            assert!(
                paths.contains(&"generate".to_string()),
                "stack healed: fresh scope records at the root, got {paths:?}"
            );
        });
    }

    #[test]
    fn threads_profile_independently() {
        isolated(|| {
            let _outer = scope("fit");
            // daisy-lint: allow(D003) -- test asserts thread-local phase paths don't leak across threads
            std::thread::spawn(|| {
                let _s = scope("ingest");
            })
            .join()
            .expect("profiled thread joins");
            let paths: Vec<String> = snapshot().into_iter().map(|s| s.path).collect();
            assert!(
                paths.contains(&"ingest".to_string()),
                "other thread's phase is rooted at its own stack, got {paths:?}"
            );
            assert!(!paths.contains(&"fit/ingest".to_string()));
        });
    }
}
