//! Prometheus-style text exposition of the metrics registry and the
//! phase profiler.
//!
//! [`render`] serializes every registered metric plus every recorded
//! phase into the plain-text format scrapers speak: `# TYPE` comment
//! lines followed by `name{labels} value` samples. Counters and gauges
//! are one sample each; histograms become cumulative `_bucket{le=...}`
//! samples (inclusive upper bounds of the pow2 buckets) plus `_sum`
//! and `_count`; phases become three label-per-path families,
//! `daisy_phase_calls_total`, `daisy_phase_seconds_total`, and
//! `daisy_phase_self_seconds_total`.
//!
//! Metric names are sanitized for the format (`daisy_` prefix, every
//! non-alphanumeric byte to `_`), so `serve.request_us` exposes as
//! `daisy_serve_request_us`.
//!
//! [`parse`] is the matching reader — used by `daisy top` to consume
//! `/metrics` and by the round-trip test that pins the writer to a
//! parseable format. It is intentionally strict: malformed names,
//! labels, or values are errors, not skips, so a formatting regression
//! fails loudly in CI.

use crate::{metrics, profile};
use std::fmt::Write as _;

/// Serializes the current metrics registry and phase-profiler state to
/// exposition text. Reads live atomics; two calls can legitimately
/// disagree.
pub fn render() -> String {
    render_parts(&metrics::readings(), &profile::snapshot())
}

/// [`render`] over explicit inputs (the testable core).
pub fn render_parts(
    readings: &[(&str, metrics::MetricReading)],
    phases: &[profile::PhaseStat],
) -> String {
    let mut out = String::new();
    for (name, reading) in readings {
        let pname = sanitize(name);
        match reading {
            metrics::MetricReading::Counter(v) => {
                let _ = writeln!(out, "# TYPE {pname} counter");
                let _ = writeln!(out, "{pname} {v}");
            }
            metrics::MetricReading::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {}", num(*v));
            }
            metrics::MetricReading::Histogram {
                buckets,
                count,
                sum,
            } => {
                let _ = writeln!(out, "# TYPE {pname} histogram");
                let mut cumulative = 0u64;
                for &(lo, n) in buckets {
                    cumulative += n;
                    let le = metrics::bucket_le(lo);
                    let _ = writeln!(out, "{pname}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{pname}_sum {sum}");
                let _ = writeln!(out, "{pname}_count {count}");
            }
        }
    }
    if !phases.is_empty() {
        let _ = writeln!(out, "# TYPE daisy_phase_calls_total counter");
        for p in phases {
            let _ = writeln!(
                out,
                "daisy_phase_calls_total{{phase=\"{}\"}} {}",
                p.path, p.calls
            );
        }
        let _ = writeln!(out, "# TYPE daisy_phase_seconds_total counter");
        for p in phases {
            let _ = writeln!(
                out,
                "daisy_phase_seconds_total{{phase=\"{}\"}} {}",
                p.path,
                num(p.total_ns as f64 / 1e9)
            );
        }
        let _ = writeln!(out, "# TYPE daisy_phase_self_seconds_total counter");
        for p in phases {
            let _ = writeln!(
                out,
                "daisy_phase_self_seconds_total{{phase=\"{}\"}} {}",
                p.path,
                num(p.self_ns as f64 / 1e9)
            );
        }
    }
    out
}

/// Exposition metric name for a registry name: `daisy_` prefix, every
/// byte outside `[A-Za-z0-9_]` replaced with `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("daisy_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (already includes any `_bucket`/`_sum` suffix).
    pub name: String,
    /// Label pairs in source order; empty when the sample has none.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses exposition text into samples, validating the format: names
/// must match `[A-Za-z_:][A-Za-z0-9_:]*`, label values must be quoted,
/// and values must be floats (or `+Inf`/`-Inf`/`NaN`). Comment (`#`)
/// and blank lines are skipped.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let (name_and_labels, value_text) = match line.find([' ', '\t']) {
            Some(split) if line[..split].contains('{') => {
                // A label value may contain spaces; split after `}`.
                let close = line
                    .find('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (line[..=close].trim(), line[close + 1..].trim())
            }
            Some(split) => (line[..split].trim(), line[split + 1..].trim()),
            None => return Err(format!("line {lineno}: no value on sample line")),
        };
        let (name, labels) = match name_and_labels.find('{') {
            Some(open) => {
                let inner = name_and_labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (&name_and_labels[..open], parse_labels(&inner[open + 1..], lineno)?)
            }
            None => (name_and_labels, Vec::new()),
        };
        if !valid_name(name) {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        let value = parse_value(value_text)
            .ok_or_else(|| format!("line {lineno}: invalid value {value_text:?}"))?;
        samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        t => t.parse::<f64>().ok(),
    }
}

fn parse_labels(inner: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without '='"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("line {lineno}: invalid label name {key:?}"));
        }
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("line {lineno}: unquoted label value"));
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
        labels.push((key, value));
        rest = after[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

/// Reconstructs `(lower_bound, count)` histogram bucket pairs for the
/// sanitized metric `name` from its cumulative `<name>_bucket{le=...}`
/// samples (the inverse of what [`render`] writes). The `+Inf` bucket
/// is dropped; finite `le` values map back to pow2 lower bounds.
pub fn histogram_pairs(samples: &[Sample], name: &str) -> Vec<(u64, u64)> {
    let bucket_name = format!("{name}_bucket");
    let mut les: Vec<(u64, u64)> = samples
        .iter()
        .filter(|s| s.name == bucket_name)
        .filter_map(|s| {
            let le = s.label("le")?;
            if le == "+Inf" {
                return None;
            }
            let le: u64 = le.parse().ok()?;
            Some((le, s.value as u64))
        })
        .collect();
    les.sort_by_key(|&(le, _)| le);
    let mut pairs = Vec::with_capacity(les.len());
    let mut prev_cum = 0u64;
    for (le, cum) in les {
        let n = cum.saturating_sub(prev_cum);
        prev_cum = cum;
        if n == 0 {
            continue;
        }
        let lo = if le == 0 { 0 } else { le.div_ceil(2) };
        pairs.push((lo, n));
    }
    pairs
}

/// The value of the unlabeled sample `name`, if present.
pub fn sample_value(samples: &[Sample], name: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricReading;
    use crate::profile::PhaseStat;

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let readings = vec![
            ("serve.requests", MetricReading::Counter(12)),
            ("serve.active_conns", MetricReading::Gauge(2.0)),
            (
                "serve.request_us",
                MetricReading::Histogram {
                    buckets: vec![(0, 1), (256, 3), (1024, 1)],
                    count: 5,
                    sum: 2000,
                },
            ),
        ];
        let phases = vec![
            PhaseStat {
                path: "fit".to_string(),
                calls: 1,
                total_ns: 2_500_000_000,
                self_ns: 500_000_000,
            },
            PhaseStat {
                path: "fit/epoch".to_string(),
                calls: 4,
                total_ns: 2_000_000_000,
                self_ns: 2_000_000_000,
            },
        ];
        let text = render_parts(&readings, &phases);
        let samples = parse(&text).expect("writer output parses");

        assert_eq!(sample_value(&samples, "daisy_serve_requests"), Some(12.0));
        assert_eq!(
            sample_value(&samples, "daisy_serve_active_conns"),
            Some(2.0)
        );
        assert_eq!(
            sample_value(&samples, "daisy_serve_request_us_count"),
            Some(5.0)
        );
        assert_eq!(
            sample_value(&samples, "daisy_serve_request_us_sum"),
            Some(2000.0)
        );
        // Buckets decumulate back to exactly the input pairs.
        assert_eq!(
            histogram_pairs(&samples, "daisy_serve_request_us"),
            vec![(0, 1), (256, 3), (1024, 1)]
        );
        // The +Inf bucket equals the count.
        let inf = samples
            .iter()
            .find(|s| s.name == "daisy_serve_request_us_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket present");
        assert_eq!(inf.value, 5.0);
        // Phase families carry the path as a label.
        let calls = samples
            .iter()
            .find(|s| s.name == "daisy_phase_calls_total" && s.label("phase") == Some("fit/epoch"))
            .expect("phase sample present");
        assert_eq!(calls.value, 4.0);
        let secs = samples
            .iter()
            .find(|s| {
                s.name == "daisy_phase_seconds_total" && s.label("phase") == Some("fit")
            })
            .expect("seconds sample present");
        assert_eq!(secs.value, 2.5);
    }

    #[test]
    fn live_registry_renders_parseable_text() {
        crate::metrics::counter("test.expose.live").add(3);
        crate::metrics::histogram("test.expose.hist").observe(100);
        let text = render();
        let samples = parse(&text).expect("live exposition parses");
        assert!(sample_value(&samples, "daisy_test_expose_live").is_some());
        assert!(sample_value(&samples, "daisy_test_expose_hist_count").is_some());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("name_only\n").is_err());
        assert!(parse("9bad_name 1\n").is_err());
        assert!(parse("name{le=\"3\" 1\n").is_err(), "unterminated labels");
        assert!(parse("name{le=3} 1\n").is_err(), "unquoted label value");
        assert!(parse("name not_a_number\n").is_err());
        assert!(parse("# comment\n\nok_name 1.5\n").is_ok());
    }

    #[test]
    fn sanitize_prefixes_and_replaces() {
        assert_eq!(sanitize("serve.request_us"), "daisy_serve_request_us");
        assert_eq!(sanitize("pool.steal-count"), "daisy_pool_steal_count");
    }
}
