//! Run reports: a human-readable digest of a trace file.
//!
//! [`RunReport::from_jsonl`] parses a trace (as written under
//! `DAISY_TRACE`) and [`RunReport::render`] prints the story of the
//! run: the loss curve per epoch, the recovery timeline (faults, guard
//! trips, recovery actions, escalations), model selection, bench cells,
//! and the final pool/kernel utilization snapshot. This is the engine
//! behind the `daisy report` subcommand.

use crate::json::Json;
use crate::schema;
use crate::trace::{parse_trace, validate_trace, TraceStats};

/// A parsed trace plus its validation summary.
pub struct RunReport {
    stats: TraceStats,
    events: Vec<Json>,
}

fn fval(event: &Json, key: &str) -> String {
    match event.get(key) {
        None => "-".to_string(),
        Some(v) => {
            let mut s = String::new();
            v.write(&mut s);
            s.trim_matches('"').to_string()
        }
    }
}

impl RunReport {
    /// Validates and parses a JSONL trace. Fails with the validator's
    /// line-numbered message on a malformed trace.
    pub fn from_jsonl(jsonl: &str) -> Result<RunReport, String> {
        let stats = validate_trace(jsonl)?;
        let events = parse_trace(jsonl)?;
        Ok(RunReport { stats, events })
    }

    /// The validation summary for this trace.
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Json> {
        self.events
            .iter()
            .filter(move |e| e.get("event").and_then(Json::as_str) == Some(name))
    }

    fn render_ingest(&self, out: &mut String) {
        let starts: Vec<&Json> = self.named(schema::INGEST_START).collect();
        let sealed: Vec<&Json> = self.named(schema::CHUNK_SEALED).collect();
        let ends: Vec<&Json> = self.named(schema::INGEST_END).collect();
        if starts.is_empty() && sealed.is_empty() && ends.is_empty() {
            return;
        }
        out.push_str("\nIngestion\n");
        for e in &starts {
            out.push_str(&format!(
                "  start       resumed={} chunk_rows={}\n",
                fval(e, "resumed"),
                fval(e, "chunk_rows")
            ));
        }
        for e in &sealed {
            out.push_str(&format!(
                "  chunk {:>5}  rows={} bytes={}\n",
                fval(e, "chunk"),
                fval(e, "rows"),
                fval(e, "bytes")
            ));
        }
        for e in &ends {
            out.push_str(&format!(
                "  end         rows={} rejected={} chunks={}\n",
                fval(e, "rows"),
                fval(e, "rejected"),
                fval(e, "chunks")
            ));
        }
    }

    fn render_losses(&self, out: &mut String) {
        let epochs: Vec<&Json> = self.named(schema::EPOCH).collect();
        if epochs.is_empty() {
            return;
        }
        out.push_str("\nLoss curve\n");
        out.push_str("  epoch      d_loss      g_loss          kl  |grad G|  |grad D|\n");
        for e in epochs {
            out.push_str(&format!(
                "  {:>5}  {:>10}  {:>10}  {:>10}  {:>8}  {:>8}\n",
                fval(e, "epoch"),
                fval(e, "d_loss"),
                fval(e, "g_loss"),
                fval(e, "kl"),
                fval(e, "grad_norm_g"),
                fval(e, "grad_norm_d"),
            ));
        }
    }

    fn render_recovery(&self, out: &mut String) {
        let timeline: Vec<&Json> = self
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.get("event").and_then(Json::as_str),
                    Some(
                        schema::FAULT_FIRED
                            | schema::GUARD_TRIP
                            | schema::RECOVERY
                            | schema::ESCALATE_SIMPLIFIED_D
                            | schema::CHECKPOINT_WRITE
                            | schema::CHECKPOINT_RESTORE
                            | schema::CHECKPOINT_CORRUPT_SKIPPED
                            | schema::CELL_SKIPPED
                            | schema::SWEEP_RESUME
                            | schema::INGEST_RESUME
                            | schema::INGEST_ROW_REJECTED
                            | schema::CHUNK_QUARANTINED
                    )
                )
            })
            .collect();
        if timeline.is_empty() {
            return;
        }
        out.push_str("\nRecovery timeline\n");
        for e in timeline {
            let name = e.get("event").and_then(Json::as_str).unwrap_or("?");
            let detail = match name {
                schema::FAULT_FIRED => format!("kind={}", fval(e, "kind")),
                schema::GUARD_TRIP => format!("reason={}", fval(e, "reason")),
                schema::RECOVERY => format!(
                    "action={} lr_scale={}",
                    fval(e, "action"),
                    fval(e, "lr_scale")
                ),
                schema::CHECKPOINT_WRITE => {
                    format!("epoch={} bytes={}", fval(e, "epoch"), fval(e, "bytes"))
                }
                schema::CHECKPOINT_RESTORE => format!("epoch={}", fval(e, "epoch")),
                schema::CHECKPOINT_CORRUPT_SKIPPED => {
                    format!("slot={} error={}", fval(e, "slot"), fval(e, "error"))
                }
                schema::CELL_SKIPPED => format!("cell={}", fval(e, "cell")),
                schema::SWEEP_RESUME => {
                    format!("done={} total={}", fval(e, "done"), fval(e, "total"))
                }
                schema::INGEST_RESUME => format!(
                    "from_chunk={} skip_lines={}",
                    fval(e, "from_chunk"),
                    fval(e, "skip_lines")
                ),
                schema::INGEST_ROW_REJECTED => {
                    format!("line={} reason={}", fval(e, "line"), fval(e, "reason"))
                }
                schema::CHUNK_QUARANTINED => {
                    format!("chunk={} error={}", fval(e, "chunk"), fval(e, "error"))
                }
                _ => format!("reason={}", fval(e, "reason")),
            };
            out.push_str(&format!(
                "  seq {:>5}  step {:>6}  {:<22} {}\n",
                fval(e, "seq"),
                fval(e, "step"),
                name,
                detail
            ));
        }
    }

    fn render_selection(&self, out: &mut String) {
        let scores: Vec<&Json> = self.named(schema::MODEL_SELECTION_SCORE).collect();
        let chosen: Vec<&Json> = self.named(schema::MODEL_SELECTED).collect();
        if scores.is_empty() && chosen.is_empty() {
            return;
        }
        out.push_str("\nModel selection\n");
        for e in &scores {
            out.push_str(&format!(
                "  epoch {:>4}  score {}\n",
                fval(e, "epoch"),
                fval(e, "score")
            ));
        }
        for e in &chosen {
            out.push_str(&format!(
                "  selected epoch {} (score {})\n",
                fval(e, "epoch"),
                fval(e, "score")
            ));
        }
    }

    fn render_cells(&self, out: &mut String) {
        let cells: Vec<&Json> = self.named(schema::CELL_END).collect();
        if cells.is_empty() {
            return;
        }
        out.push_str("\nBench cells\n");
        for e in cells {
            out.push_str(&format!(
                "  {:<40} attempts={} ok={} rocky={}\n",
                fval(e, "cell"),
                fval(e, "attempts"),
                fval(e, "ok"),
                fval(e, "rocky"),
            ));
        }
    }

    /// Percentile **estimate** from a pow2-bucket string as rendered
    /// by [`crate::metrics::snapshot_fields`] (`"<lower>:<count>"`
    /// pairs joined by `,`): linear interpolation within the target
    /// bucket via [`crate::metrics::bucket_percentile`]. The bucket
    /// edges are powers of two, so the value is exact only for uniform
    /// in-bucket distributions — renderers label it with `≈`.
    fn bucket_percentile(buckets: &str, p: f64) -> Option<f64> {
        let pairs: Vec<(u64, u64)> = buckets
            .split(',')
            .filter_map(|pair| {
                let (lo, n) = pair.split_once(':')?;
                Some((lo.parse().ok()?, n.parse().ok()?))
            })
            .collect();
        crate::metrics::bucket_percentile(&pairs, p)
    }

    /// Renders `p50≈A p99≈B` for one `<name>.buckets` field of the
    /// last metrics snapshot, or `None` when the histogram is absent
    /// or empty.
    fn snapshot_p50_p99(snapshot: &Json, name: &str) -> Option<(f64, f64)> {
        let buckets = snapshot
            .get(&format!("{name}.buckets"))
            .and_then(Json::as_str)?;
        let p50 = Self::bucket_percentile(buckets, 50.0)?;
        let p99 = Self::bucket_percentile(buckets, 99.0)?;
        Some((p50, p99))
    }

    fn render_serving(&self, out: &mut String) {
        let starts: Vec<&Json> = self.named(schema::SERVE_START).collect();
        let reqs: Vec<&Json> = self.named(schema::SERVE_REQUEST_END).collect();
        if starts.is_empty() && reqs.is_empty() {
            return;
        }
        out.push_str("\nServing (non-deterministic)\n");
        for e in &starts {
            out.push_str(&format!(
                "  model       params={} bytes={} columns={} conditional={} max_conn={}\n",
                fval(e, "params"),
                fval(e, "bytes"),
                fval(e, "columns"),
                fval(e, "conditional"),
                fval(e, "max_conn"),
            ));
        }
        let done = reqs.len();
        let ok = reqs.iter().filter(|e| fval(e, "ok") == "true").count();
        let rows: u64 = reqs.iter().filter_map(|e| e.get("rows")?.as_u64()).sum();
        let ms: f64 = reqs
            .iter()
            .filter_map(|e| e.get("wall")?.get("ms")?.as_f64())
            .sum();
        out.push_str(&format!(
            "  requests    total={done} ok={ok} rows={rows}\n"
        ));
        if ms > 0.0 {
            out.push_str(&format!(
                "  throughput  {:.0} rows/sec (summed request wall time {:.1} ms)\n",
                rows as f64 / (ms / 1000.0),
                ms
            ));
        }
        // Lifecycle events: drains and hot reloads, in trace order.
        let drains: Vec<&Json> = self.named(schema::SERVE_DRAIN).collect();
        for e in &drains {
            out.push_str(&format!(
                "  drain       began with {} stream(s) in flight (window {} ms)\n",
                fval(e, "active"),
                fval(e, "drain_ms"),
            ));
        }
        let reloads: Vec<&Json> = self.named(schema::SERVE_RELOAD).collect();
        for e in &reloads {
            if fval(e, "ok") == "true" {
                out.push_str(&format!(
                    "  reload      generation {} fingerprint {}\n",
                    fval(e, "generation"),
                    fval(e, "fingerprint"),
                ));
            } else {
                out.push_str(&format!(
                    "  reload      FAILED ({}); old model kept serving\n",
                    fval(e, "error"),
                ));
            }
        }
        // Distributions from the last metrics snapshot. Percentiles
        // are linear-interpolation estimates inside pow2 buckets.
        if let Some(snapshot) = self.named(schema::METRICS_SNAPSHOT).last() {
            let resilience: Vec<String> = [
                ("serve.timeouts", "timeouts"),
                ("serve.drained", "drained"),
                ("serve.shed_requests", "shed"),
                ("serve.resumed_requests", "resumed"),
                ("serve.reloads", "reloads"),
            ]
            .iter()
            .filter_map(|(key, label)| {
                let n = snapshot.get(key)?.as_u64()?;
                (n > 0).then(|| format!("{label}={n}"))
            })
            .collect();
            if !resilience.is_empty() {
                out.push_str(&format!("  resilience  {}\n", resilience.join(" ")));
            }
            if let Some((p50, p99)) = Self::snapshot_p50_p99(snapshot, "serve.rows_per_request") {
                out.push_str(&format!(
                    "  rows/request  p50≈{p50:.0} p99≈{p99:.0} (pow2-bucket interpolation estimate)\n"
                ));
            }
            if let Some((p50, p99)) = Self::snapshot_p50_p99(snapshot, "serve.request_us") {
                out.push_str(&format!(
                    "  latency       p50≈{:.1}ms p99≈{:.1}ms (pow2-bucket interpolation estimate)\n",
                    p50 / 1000.0,
                    p99 / 1000.0
                ));
            }
            if let Some((p50, p99)) = Self::snapshot_p50_p99(snapshot, "serve.requests_per_conn") {
                out.push_str(&format!(
                    "  pipelining    requests/conn p50≈{p50:.0} p99≈{p99:.0} (pow2-bucket interpolation estimate)\n"
                ));
            }
        }
    }

    fn render_profile(&self, out: &mut String) {
        // The last profile snapshot is the end-of-run aggregate.
        let Some(snapshot) = self.named(schema::PROFILE).last() else {
            return;
        };
        let Some(members) = snapshot.as_obj() else {
            return;
        };
        // Re-group the flattened `<path>.calls/.total_ms/.self_ms`
        // fields by path, then rank hottest-first by self time.
        let mut phases: Vec<(String, f64, f64, f64)> = Vec::new();
        for (key, value) in members {
            let Some(path) = key.strip_suffix(".calls") else {
                continue;
            };
            let calls = value.as_f64().unwrap_or(0.0);
            let total_ms = snapshot
                .get(&format!("{path}.total_ms"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let self_ms = snapshot
                .get(&format!("{path}.self_ms"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            phases.push((path.to_string(), calls, total_ms, self_ms));
        }
        if phases.is_empty() {
            return;
        }
        phases.sort_by(|a, b| b.3.total_cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
        out.push_str("\nProfile (wall-time phases, hottest self time first; non-deterministic)\n");
        out.push_str("  phase                                calls    total ms     self ms\n");
        for (path, calls, total_ms, self_ms) in &phases {
            out.push_str(&format!(
                "  {path:<35} {calls:>7.0} {total_ms:>11.1} {self_ms:>11.1}\n"
            ));
        }
    }

    fn render_metrics(&self, out: &mut String) {
        // The last metrics snapshot is the end-of-run aggregate state.
        let Some(snapshot) = self.named(schema::METRICS_SNAPSHOT).last() else {
            return;
        };
        let Some(members) = snapshot.as_obj() else {
            return;
        };
        out.push_str("\nMetrics (last snapshot; non-deterministic)\n");
        for (key, value) in members {
            if matches!(key.as_str(), "seq" | "event" | "nd" | "wall") {
                continue;
            }
            let mut rendered = String::new();
            value.write(&mut rendered);
            out.push_str(&format!("  {key} = {rendered}\n"));
        }
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Trace: {} events ({} non-deterministic), {} event types\n",
            self.stats.events,
            self.stats.nd_events,
            self.stats.names.len()
        ));
        out.push_str(&format!("Event types: {}\n", self.stats.names.join(", ")));
        self.render_ingest(&mut out);
        self.render_losses(&mut out);
        self.render_recovery(&mut out);
        self.render_selection(&mut out);
        self.render_cells(&mut out);
        self.render_serving(&mut out);
        self.render_profile(&mut out);
        self.render_metrics(&mut out);
        out
    }

    /// Renders only the live-introspection sections (serving and
    /// phase profile) — the offline backend of `daisy top --trace`.
    pub fn render_top(&self) -> String {
        let mut out = String::new();
        self.render_serving(&mut out);
        self.render_profile(&mut out);
        if out.is_empty() {
            out.push_str("no serving or profile events in this trace\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{field, Event};

    #[test]
    fn renders_losses_recovery_and_metrics() {
        let lines = [
            Event::new(schema::TRAIN_START, vec![field("iterations", 4usize)]).to_json_line(0),
            Event::new(
                schema::EPOCH,
                vec![
                    field("epoch", 0usize),
                    field("d_loss", 0.5f64),
                    field("g_loss", 0.25f64),
                    field("kl", 0.125f64),
                ],
            )
            .to_json_line(1),
            Event::new(
                schema::GUARD_TRIP,
                vec![field("step", 3usize), field("reason", "non_finite_loss")],
            )
            .to_json_line(2),
            Event::new(
                schema::RECOVERY,
                vec![
                    field("step", 3usize),
                    field("action", "rollback"),
                    field("lr_scale", 0.5f64),
                ],
            )
            .to_json_line(3),
            Event::new(schema::METRICS_SNAPSHOT, vec![field("pool.jobs", 12u64)])
                .non_deterministic()
                .to_json_line(4),
        ];
        let jsonl = lines.join("\n") + "\n";
        let report = RunReport::from_jsonl(&jsonl).unwrap();
        assert_eq!(report.stats().events, 5);
        let text = report.render();
        assert!(text.contains("Loss curve"), "{text}");
        assert!(text.contains("0.5"), "{text}");
        assert!(text.contains("Recovery timeline"), "{text}");
        assert!(text.contains("action=rollback"), "{text}");
        assert!(text.contains("pool.jobs = 12"), "{text}");
    }

    #[test]
    fn renders_checkpoint_and_sweep_events_in_the_timeline() {
        let lines = [
            Event::new(
                schema::SWEEP_RESUME,
                vec![field("done", 2usize), field("total", 4usize)],
            )
            .to_json_line(0),
            Event::new(schema::CELL_SKIPPED, vec![field("cell", "mlp/vtrain")]).to_json_line(1),
            Event::new(
                schema::CHECKPOINT_WRITE,
                vec![
                    field("epoch", 1usize),
                    field("step", 6usize),
                    field("bytes", 1024usize),
                ],
            )
            .to_json_line(2),
            Event::new(
                schema::CHECKPOINT_CORRUPT_SKIPPED,
                vec![field("slot", "primary"), field("error", "bad crc")],
            )
            .to_json_line(3),
            Event::new(
                schema::CHECKPOINT_RESTORE,
                vec![field("step", 6usize), field("epoch", 1usize)],
            )
            .to_json_line(4),
        ];
        let jsonl = lines.join("\n") + "\n";
        let report = RunReport::from_jsonl(&jsonl).unwrap();
        let text = report.render();
        assert!(text.contains("Recovery timeline"), "{text}");
        assert!(text.contains("done=2 total=4"), "{text}");
        assert!(text.contains("cell=mlp/vtrain"), "{text}");
        assert!(text.contains("checkpoint_write"), "{text}");
        assert!(text.contains("epoch=1 bytes=1024"), "{text}");
        assert!(text.contains("slot=primary"), "{text}");
        assert!(text.contains("checkpoint_restore"), "{text}");
    }

    #[test]
    fn renders_ingest_events() {
        let lines = [
            Event::new(
                schema::INGEST_START,
                vec![field("resumed", false), field("chunk_rows", 4096usize)],
            )
            .to_json_line(0),
            Event::new(
                schema::CHUNK_SEALED,
                vec![
                    field("chunk", 0usize),
                    field("rows", 4096usize),
                    field("bytes", 99000usize),
                ],
            )
            .to_json_line(1),
            Event::new(
                schema::INGEST_ROW_REJECTED,
                vec![field("line", 4100usize), field("reason", "non_finite")],
            )
            .to_json_line(2),
            Event::new(
                schema::INGEST_RESUME,
                vec![field("from_chunk", 1usize), field("skip_lines", 4096usize)],
            )
            .to_json_line(3),
            Event::new(
                schema::CHUNK_QUARANTINED,
                vec![field("chunk", 1usize), field("error", "bad crc")],
            )
            .to_json_line(4),
            Event::new(
                schema::INGEST_END,
                vec![
                    field("rows", 5000usize),
                    field("rejected", 1usize),
                    field("chunks", 2usize),
                ],
            )
            .to_json_line(5),
        ];
        let jsonl = lines.join("\n") + "\n";
        let report = RunReport::from_jsonl(&jsonl).unwrap();
        let text = report.render();
        assert!(text.contains("Ingestion"), "{text}");
        assert!(text.contains("resumed=false chunk_rows=4096"), "{text}");
        assert!(text.contains("rows=4096 bytes=99000"), "{text}");
        assert!(text.contains("rows=5000 rejected=1 chunks=2"), "{text}");
        assert!(text.contains("Recovery timeline"), "{text}");
        assert!(text.contains("line=4100 reason=non_finite"), "{text}");
        assert!(text.contains("from_chunk=1 skip_lines=4096"), "{text}");
        assert!(text.contains("chunk=1 error=bad crc"), "{text}");
    }

    #[test]
    fn renders_serving_section() {
        let lines = [
            Event::new(
                schema::SERVE_START,
                vec![
                    field("params", 1234usize),
                    field("bytes", 4936usize),
                    field("columns", 9usize),
                    field("conditional", true),
                    field("max_conn", 4usize),
                    field("max_rows", 1_000_000usize),
                ],
            )
            .non_deterministic()
            .to_json_line(0),
            Event::new(
                schema::SERVE_REQUEST_END,
                vec![field("conn", 0usize), field("rows", 500usize), field("ok", true)],
            )
            .non_deterministic()
            .with_wall(vec![field("ms", 20.0f64)])
            .to_json_line(1),
            Event::new(
                schema::SERVE_REQUEST_END,
                vec![field("conn", 1usize), field("rows", 1500usize), field("ok", true)],
            )
            .non_deterministic()
            .with_wall(vec![field("ms", 80.0f64)])
            .to_json_line(2),
            Event::new(
                schema::METRICS_SNAPSHOT,
                vec![
                    field("serve.rows_per_request.count", 2u64),
                    field("serve.rows_per_request.sum", 2000u64),
                    field("serve.rows_per_request.buckets", "256:1,1024:1"),
                ],
            )
            .non_deterministic()
            .to_json_line(3),
        ];
        let jsonl = lines.join("\n") + "\n";
        let report = RunReport::from_jsonl(&jsonl).unwrap();
        let text = report.render();
        assert!(text.contains("Serving"), "{text}");
        assert!(text.contains("params=1234"), "{text}");
        assert!(text.contains("total=2 ok=2 rows=2000"), "{text}");
        // 2000 rows over 100 ms of summed request wall time.
        assert!(text.contains("20000 rows/sec"), "{text}");
        // One row count in [256,512), one in [1024,2048): p50 lands at
        // the top of the first bucket, p99 interpolates 98% into the
        // second — estimates, and labelled as such.
        assert!(text.contains("p50≈512 p99≈2028"), "{text}");
        assert!(text.contains("interpolation estimate"), "{text}");
    }

    #[test]
    fn bucket_percentiles_interpolate_within_buckets() {
        // 10 requests: 9 in the 0-bucket, 1 in the 1024-bucket.
        let buckets = "0:9,1024:1";
        assert_eq!(RunReport::bucket_percentile(buckets, 50.0), Some(0.0));
        let p99 = RunReport::bucket_percentile(buckets, 99.0).expect("non-empty");
        // Target rank 9.9 is 90% through the [1024,2048) bucket.
        assert!((1945.0..1946.0).contains(&p99), "got {p99}");
        assert_eq!(RunReport::bucket_percentile("", 50.0), None);
    }

    #[test]
    fn renders_latency_pipelining_and_profile_sections() {
        let lines = [
            Event::new(
                schema::SERVE_REQUEST_END,
                vec![field("conn", 0usize), field("rows", 64usize), field("ok", true)],
            )
            .non_deterministic()
            .with_wall(vec![field("ms", 4.0f64)])
            .to_json_line(0),
            Event::new(
                schema::METRICS_SNAPSHOT,
                vec![
                    field("serve.request_us.count", 4u64),
                    field("serve.request_us.sum", 16000u64),
                    field("serve.request_us.buckets", "4096:4"),
                    field("serve.requests_per_conn.count", 2u64),
                    field("serve.requests_per_conn.sum", 4u64),
                    field("serve.requests_per_conn.buckets", "2:2"),
                ],
            )
            .non_deterministic()
            .to_json_line(1),
            Event::new(
                schema::PROFILE,
                vec![
                    field("serve_request.calls", 4u64),
                    field("serve_request.total_ms", 16.0f64),
                    field("serve_request.self_ms", 6.0f64),
                    field("serve_request/generate.calls", 4u64),
                    field("serve_request/generate.total_ms", 10.0f64),
                    field("serve_request/generate.self_ms", 10.0f64),
                ],
            )
            .non_deterministic()
            .to_json_line(2),
        ];
        let jsonl = lines.join("\n") + "\n";
        let report = RunReport::from_jsonl(&jsonl).unwrap();
        let text = report.render();
        assert!(text.contains("latency"), "{text}");
        // 4 observations in [4096,8192) µs: p50 interpolates to 6.1ms.
        assert!(text.contains("p50≈6.1ms"), "{text}");
        assert!(text.contains("pipelining"), "{text}");
        // 2 observations in [2,4): p50 interpolates to the midpoint.
        assert!(text.contains("requests/conn p50≈3"), "{text}");
        assert!(text.contains("Profile"), "{text}");
        // Hottest self time first: the generate child outranks its
        // parent's self share.
        let generate_at = text.find("serve_request/generate").expect("child phase listed");
        let parent_at = text
            .find("serve_request ")
            .or_else(|| {
                // Column-padded table: find the parent row, not the child.
                text.match_indices("serve_request")
                    .map(|(i, _)| i)
                    .find(|&i| !text[i..].starts_with("serve_request/"))
            })
            .expect("parent phase listed");
        assert!(generate_at < parent_at, "{text}");
    }

    #[test]
    fn rejects_malformed_traces() {
        assert!(RunReport::from_jsonl("garbage\n").is_err());
    }
}
