//! A minimal JSON value with a writer and a recursive-descent parser.
//!
//! This is the single JSON implementation of the workspace: the JSONL
//! trace sink ([`crate::sink`]), the bench report emitter
//! (`crates/bench/benches/kernels.rs`), trace validation
//! ([`crate::trace`]) and the `daisy report` renderer all go through
//! it, replacing the ad-hoc string-building serializers that used to
//! live next to each call site.
//!
//! Design constraints, in order:
//!
//! 1. **Zero dependencies** — hand-rolled, like the rest of the
//!    workspace.
//! 2. **Byte-stable round-trips** — `write(parse(s))` reproduces `s`
//!    for any document this crate itself wrote. Object key order is
//!    preserved (objects are association lists, not maps) and numbers
//!    are formatted with Rust's shortest-round-trip `Display`, so
//!    re-serialization is deterministic. This is what lets
//!    [`crate::trace::deterministic_view`] compare traces byte for
//!    byte.
//! 3. **Non-finite floats never appear as numbers** — JSON has no NaN;
//!    emitters quote them as the strings `"NaN"`, `"inf"`, `"-inf"`.

use std::fmt::Write as _;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved on parse and write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes compactly to a fresh string.
    pub fn to_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Serializes with two-space indentation (for files meant to be
    /// read by humans, like the committed bench report).
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        s.push('\n');
        s
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes a number the way every emitter in this crate must: shortest
/// round-trip `Display` for finite values, a quoted string for
/// non-finite ones.
pub fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else if n.is_nan() {
        out.push_str("\"NaN\"");
    } else if n > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Writes `s` as a JSON string literal with full escaping.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free UTF-8 run at once.
            while self
                .peek()
                .is_some_and(|c| c != b'"' && c != b'\\')
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
                _ => unreachable!(),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_byte_for_byte() {
        let doc = r#"{"a":1,"b":[1.5,"x\ny",true,null],"c":{"nested":-2.25},"empty":{}}"#;
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(parsed.to_compact(), doc);
    }

    #[test]
    fn preserves_key_order() {
        let doc = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(Json::parse(doc).unwrap().to_compact(), doc);
    }

    #[test]
    fn escapes_and_unescapes() {
        let mut s = String::new();
        write_escaped("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, r#""a\"b\\c\nd\u0001""#);
        let back = Json::parse(&s).unwrap();
        assert_eq!(back.as_str().unwrap(), "a\"b\\c\nd\u{1}");
    }

    #[test]
    fn non_finite_numbers_become_strings() {
        let mut s = String::new();
        write_num(f64::NAN, &mut s);
        s.push(' ');
        write_num(f64::INFINITY, &mut s);
        s.push(' ');
        write_num(f64::NEG_INFINITY, &mut s);
        assert_eq!(s, r#""NaN" "inf" "-inf""#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x","a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn pretty_printing_nests() {
        let v = Json::parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let pretty = v.to_pretty();
        assert!(pretty.contains("\"a\": [\n"));
        assert!(pretty.ends_with("}\n"));
        // Pretty output re-parses to the same value.
        assert_eq!(Json::parse(pretty.trim()).unwrap(), v);
    }
}
