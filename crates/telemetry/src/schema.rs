//! The event vocabulary: names and field conventions shared by the
//! emitters (daisy-core, daisy-tensor, the bench harness) and the
//! consumers (`daisy report`, tests).
//!
//! Every constant here names one event type; the field lists below are
//! the contract `docs/OBSERVABILITY.md` documents. Keeping the names in
//! one module means an emitter and the report renderer cannot drift
//! apart silently.

/// Synthesizer fit attempt started. Fields: `network`, `algorithm`,
/// `rows`, `seed`, `conditional`, `simplified_d`.
pub const FIT_START: &str = "fit_start";
/// Synthesizer fit attempt finished. Fields: `completed_epochs`,
/// `recoveries`, `degraded`, `escalated_wtrain`, `selected_epoch`,
/// `clean`.
pub const FIT_END: &str = "fit_end";
/// The synthesizer rebuilt with the simplified discriminator and
/// refitted (§5.2 remedy). Fields: `reason`.
pub const ESCALATE_SIMPLIFIED_D: &str = "escalate_simplified_d";
/// One epoch snapshot scored during validation-based model selection.
/// Fields: `epoch`, `score`.
pub const MODEL_SELECTION_SCORE: &str = "model_selection_score";
/// Model selection chose a snapshot. Fields: `epoch`, `score`.
pub const MODEL_SELECTED: &str = "model_selected";

/// Training started. Fields: `algorithm`, `iterations`, `epochs`,
/// `batch_size`, `d_steps`, `conditional`, `dp`, `pac`.
pub const TRAIN_START: &str = "train_start";
/// Training finished. Fields: `completed_epochs`, `recoveries`,
/// `degraded`, `escalated_wtrain`.
pub const TRAIN_END: &str = "train_end";
/// One clean epoch completed. Fields: `epoch`, `step`, `d_loss`,
/// `g_loss`, `kl`, `grad_norm_g`, `grad_norm_d`.
pub const EPOCH: &str = "epoch";
/// An epoch snapshot was captured for model selection / rollback.
/// Fields: `epoch`, `step`.
pub const SNAPSHOT: &str = "snapshot";
/// The guard tripped. Fields: `step`, `epoch`, `reason`, plus
/// reason-specific detail (`d_loss`/`g_loss`, `loss`/`ema`,
/// `duplicate_fraction`).
pub const GUARD_TRIP: &str = "guard_trip";
/// The recovery policy acted on a trip. Fields: `step`, `epoch`,
/// `action`, `lr_scale` (rollback/escalation only).
pub const RECOVERY: &str = "recovery";
/// A scheduled fault fired. Fields: `kind`, plus `step` (training
/// faults), `save` (checkpoint I/O faults), or `chunk`/`row`
/// (data-plane faults).
pub const FAULT_FIRED: &str = "fault_fired";

/// Streaming ingestion started (fresh or resumed). Fields: `resumed`,
/// `chunk_rows`.
pub const INGEST_START: &str = "ingest_start";
/// A rerun found a usable ingest journal and resumed. Fields:
/// `from_chunk` (first chunk to re-ingest), `skip_lines` (input lines
/// already consumed by sealed chunks).
pub const INGEST_RESUME: &str = "ingest_resume";
/// The skip error policy rejected one input row into the quarantine
/// file. Fields: `line`, `reason`.
pub const INGEST_ROW_REJECTED: &str = "ingest_row_rejected";
/// Streaming ingestion finished and the manifest was sealed. Fields:
/// `rows`, `rejected`, `chunks`.
pub const INGEST_END: &str = "ingest_end";
/// A columnar chunk was written durably and journaled. Fields:
/// `chunk`, `rows`, `bytes`.
pub const CHUNK_SEALED: &str = "chunk_sealed";
/// A chunk (or journal tail) failed validation and was moved aside as
/// `*.corrupt-N`. Fields: `chunk`, `error`.
pub const CHUNK_QUARANTINED: &str = "chunk_quarantined";

/// A training checkpoint was written durably. Fields: `epoch`, `step`,
/// `bytes` (logical fields only — no paths, so deterministic views
/// compare across machines).
pub const CHECKPOINT_WRITE: &str = "checkpoint_write";
/// Training resumed from a durable checkpoint. Fields: `step`, `epoch`.
pub const CHECKPOINT_RESTORE: &str = "checkpoint_restore";
/// A corrupt checkpoint was detected, quarantined, and skipped in
/// favour of its predecessor. Fields: `slot` (`primary`/`previous`),
/// `error`.
pub const CHECKPOINT_CORRUPT_SKIPPED: &str = "checkpoint_corrupt_skipped";

/// A bench-harness cell started. Fields: `cell`, `seed`.
pub const CELL_START: &str = "cell_start";
/// A cell attempt failed and will retry with a fresh seed. Fields:
/// `cell`, `attempt`, `error`.
pub const CELL_RETRY: &str = "cell_retry";
/// A cell finished (successfully or not). Fields: `cell`, `attempts`,
/// `ok`, `rocky`.
pub const CELL_END: &str = "cell_end";
/// A resumed sweep skipped a cell its journal marks done. Fields:
/// `cell`.
pub const CELL_SKIPPED: &str = "cell_skipped";
/// A sweep found an existing journal and resumed. Fields: `done`
/// (completed cells on record), `total`.
pub const SWEEP_RESUME: &str = "sweep_resume";

/// The serving plane validated its model and is accepting requests
/// (whole event is non-deterministic: serving is wall-clock territory).
/// Fields: `params`, `bytes`, `columns`, `conditional`, `max_conn`,
/// `max_rows`.
pub const SERVE_START: &str = "serve_start";
/// A generation request was accepted and its header sent (whole event
/// is non-deterministic). Fields: `conn`, `seed`, `n_rows`,
/// `condition`.
pub const SERVE_REQUEST_START: &str = "serve_request_start";
/// A generation request finished, cleanly or not (whole event is
/// non-deterministic). Fields: `conn`, `rows`, `ok`; wall fields:
/// `ms`.
pub const SERVE_REQUEST_END: &str = "serve_request_end";
/// The serving plane began a graceful drain: the accept loop stopped
/// and in-flight requests got `DAISY_SERVE_DRAIN_MS` to finish (whole
/// event is non-deterministic). Fields: `active` (connections in
/// flight when the drain began), `drain_ms` (the configured window).
pub const SERVE_DRAIN: &str = "serve_drain";
/// An admin-triggered hot model reload completed or failed (whole
/// event is non-deterministic). Fields: `ok`, `generation` (reload
/// generation after the attempt), `fingerprint` (active model
/// fingerprint after the attempt), `error` (`-` on success).
pub const SERVE_RELOAD: &str = "serve_reload";

/// A span opened. Fields: `span`, plus caller fields.
pub const SPAN_START: &str = "span_start";
/// A span closed. Fields: `span`, `events` (logical duration: number
/// of events recorded on this thread while the span was open); wall
/// fields: `ms`.
pub const SPAN_END: &str = "span_end";

/// Metrics-registry snapshot (whole event is non-deterministic).
/// Fields: one per registered metric, see
/// [`crate::metrics::snapshot_fields`].
pub const METRICS_SNAPSHOT: &str = "metrics";

/// Phase-profiler snapshot (whole event is non-deterministic: the
/// profiler measures wall time). Fields: `<path>.calls`,
/// `<path>.total_ms`, `<path>.self_ms` per recorded phase path, see
/// [`crate::emit_profile_snapshot`].
pub const PROFILE: &str = "profile";

/// The closed vocabulary of phase-path *segments* accepted by
/// [`crate::profile::scope`] / `phase_scope!`. The workspace lint
/// (rule S004) checks every phase literal at an instrumentation site
/// against this list, the same way S001 pins event names, so the
/// profiler, `/profile`, `daisy top`, and `docs/OBSERVABILITY.md`
/// share one vocabulary. Paths seen in snapshots are `/`-joins of
/// these segments (e.g. `fit/epoch/matmul_nt`).
pub const PHASES: &[&str] = &[
    "fit",
    "epoch",
    "generate",
    "ingest",
    "serve_request",
    "matmul",
    "matmul_tn",
    "matmul_nt",
    "conv2d",
    "optim",
];

/// The shape of a registered metric: which [`crate::metrics`]
/// constructor its name may be passed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing count ([`crate::metrics::counter`]).
    Counter,
    /// A last-value-wins level ([`crate::metrics::gauge`]).
    Gauge,
    /// A fixed-bucket distribution ([`crate::metrics::histogram`]).
    Histogram,
}

/// The closed registry of metric names: every name passed to
/// [`crate::metrics::counter`] / [`crate::metrics::gauge`] /
/// [`crate::metrics::histogram`] anywhere in the workspace must be
/// declared here with its kind. The workspace lint (rule M001) checks
/// each registration call site against this table — an unregistered
/// name, a kind mismatch, or a registered name no source file emits is
/// a finding — and requires every entry to appear in
/// `docs/OBSERVABILITY.md`, so the metric vocabulary, the code, and the
/// runbook cannot drift apart.
pub const METRICS: &[(&str, MetricKind)] = &[
    // compute pool (crates/tensor/src/pool.rs)
    ("pool.jobs", MetricKind::Counter),
    ("pool.serial_jobs", MetricKind::Counter),
    ("pool.blocks", MetricKind::Counter),
    ("pool.helper_blocks", MetricKind::Counter),
    ("pool.reclaimed_tickets", MetricKind::Counter),
    // kernel dispatch sizes (crates/tensor/src/linalg.rs, conv.rs)
    ("kernel.matmul.work", MetricKind::Histogram),
    ("kernel.matmul_tn.work", MetricKind::Histogram),
    ("kernel.matmul_nt.work", MetricKind::Histogram),
    ("kernel.conv2d.work", MetricKind::Histogram),
    // training plane (crates/core/src/train.rs)
    ("train.grad_norm_g", MetricKind::Gauge),
    ("train.grad_norm_d", MetricKind::Gauge),
    ("checkpoint.save_failures", MetricKind::Counter),
    // serving plane (crates/serve/src/server.rs)
    ("serve.requests", MetricKind::Counter),
    ("serve.rows", MetricKind::Counter),
    ("serve.timeouts", MetricKind::Counter),
    ("serve.drained", MetricKind::Counter),
    ("serve.reloads", MetricKind::Counter),
    ("serve.resumed_requests", MetricKind::Counter),
    ("serve.shed_requests", MetricKind::Counter),
    ("serve.active_conns", MetricKind::Gauge),
    ("serve.rows_per_request", MetricKind::Histogram),
    ("serve.request_us", MetricKind::Histogram),
    ("serve.requests_per_conn", MetricKind::Histogram),
];
