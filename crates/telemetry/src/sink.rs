//! The JSONL file sink, activated by `DAISY_TRACE=<path>`.
//!
//! One event per line, flushed after every write so a crashed or
//! killed run still leaves a readable trace — the whole point of the
//! layer is diagnosing *failed* experiments from their trace alone.
//! Sequence assignment and the write happen under one lock, so the
//! `seq` column in the file is strictly increasing even when
//! non-deterministic events arrive from worker threads.

use crate::event::Event;
use crate::recorder::Recorder;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A thread-safe JSONL writer implementing [`Recorder`].
pub struct JsonlSink {
    inner: Mutex<Inner>,
}

struct Inner {
    writer: BufWriter<File>,
    seq: u64,
    /// Set after the first write failure so the warning prints once.
    failed: bool,
}

impl JsonlSink {
    /// Creates (truncates) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            inner: Mutex::new(Inner {
                writer: BufWriter::new(file),
                seq: 0,
                failed: false,
            }),
        })
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: Event) {
        let mut inner = self.inner.lock().unwrap();
        let line = event.to_json_line(inner.seq);
        inner.seq += 1;
        let ok = inner
            .writer
            .write_all(line.as_bytes())
            .and_then(|_| inner.writer.write_all(b"\n"))
            .and_then(|_| inner.writer.flush());
        if let Err(e) = ok {
            if !inner.failed {
                inner.failed = true;
                eprintln!("warning: DAISY_TRACE sink lost an event and will keep trying: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::field;
    use crate::trace::validate_trace;

    #[test]
    fn writes_valid_jsonl_with_increasing_seq() {
        let path = std::env::temp_dir().join("daisy-telemetry-sink-test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        for i in 0..5usize {
            sink.record(Event::new("tick", vec![field("i", i)]));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let stats = validate_trace(&text).expect("trace validates");
        assert_eq!(stats.events, 5);
        std::fs::remove_file(&path).ok();
    }
}
