//! Recorder backends: where emitted events go.
//!
//! The facade in [`crate`] routes every emitted [`Event`] to exactly
//! one recorder: the thread's innermost scoped recorder
//! ([`crate::with_recorder`]) when one is installed, otherwise the
//! process-global recorder (the JSONL sink when `DAISY_TRACE` is set).
//! Each recorder assigns its own sequence numbers starting from 0, so a
//! trace captured by a fresh recorder is reproducible regardless of
//! what other recorders saw before.

use crate::event::Event;
use std::sync::Mutex;

/// A sink for trace events.
///
/// `record` is called from whichever thread emitted the event. All
/// deterministic instrumentation in the workspace emits from the
/// training driver thread, so a recorder's stream of deterministic
/// events is ordered and reproducible; implementations must still be
/// thread-safe because non-deterministic events may come from anywhere.
pub trait Recorder: Send + Sync {
    /// Accepts one event, assigning it the recorder's next sequence
    /// number.
    fn record(&self, event: Event);
}

/// A recorder that drops everything (the default when no trace sink is
/// configured). The facade short-circuits before building events when
/// telemetry is disabled, so this type mostly exists to make "no-op"
/// explicit in tests.
#[derive(Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: Event) {}
}

/// An in-memory recorder for tests and the bench harness: stores every
/// event with its assigned sequence number and can render the exact
/// JSONL the file sink would have written.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// An empty recorder (sequence numbers start at 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the recorded events, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Number of recorded events with the given name.
    pub fn count(&self, name: &str) -> usize {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.name == name)
            .count()
    }

    /// Renders the stream as JSONL, byte-identical to what
    /// [`crate::sink::JsonlSink`] writes for the same events.
    pub fn to_jsonl(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut out = String::new();
        for (seq, e) in events.iter().enumerate() {
            out.push_str(&e.to_json_line(seq as u64));
            out.push('\n');
        }
        out
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: Event) {
        self.events.lock().unwrap().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::field;

    #[test]
    fn memory_recorder_numbers_sequentially() {
        let rec = MemoryRecorder::new();
        rec.record(Event::new("a", vec![]));
        rec.record(Event::new("b", vec![field("x", 1usize)]));
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.count("a"), 1);
        assert_eq!(rec.count("missing"), 0);
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].starts_with(r#"{"seq":0,"event":"a""#));
        assert!(lines[1].starts_with(r#"{"seq":1,"event":"b""#));
    }
}
