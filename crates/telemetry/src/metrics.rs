//! The process-global metrics registry: counters, gauges, and
//! fixed-bucket histograms.
//!
//! Metrics are the *aggregate* plane of the telemetry layer,
//! complementing the event stream: worker-pool task counts, steal and
//! idle counters, and per-kernel dispatch-size histograms accumulate
//! here from any thread via lock-free atomics. Because their values
//! legitimately depend on the thread count and on scheduling, metrics
//! never enter the deterministic event stream directly — a snapshot can
//! be emitted as a single event explicitly marked non-deterministic
//! ([`crate::emit_metrics_snapshot`]).
//!
//! Handles are interned: [`counter`], [`gauge`] and [`histogram`]
//! return `&'static` references, so hot call sites can cache them in a
//! `OnceLock` and pay one atomic add per update. Call sites in hot
//! kernels should additionally gate on [`crate::enabled`] so a run
//! without telemetry pays only one relaxed load.

use crate::event::{field, Fields};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets in a [`Histogram`] (`2^0 .. 2^63`,
/// plus a zero bucket at index 0).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket histogram over unsigned sizes, with power-of-two
/// bucket edges: bucket 0 counts zeros, bucket `i >= 1` counts values
/// in `[2^(i-1), 2^i)`. Fixed edges keep observation cost at one shift
/// plus one atomic add and make snapshots machine-independent in
/// *shape* (the counts may still differ run to run).
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs in ascending
    /// bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                    (lo, n)
                })
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    C(&'static Counter),
    G(&'static Gauge),
    H(&'static Histogram),
}

static REGISTRY: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

/// Interns (or retrieves) the counter named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name)
        .or_insert_with(|| Metric::C(Box::leak(Box::new(Counter::default()))))
    {
        Metric::C(c) => c,
        _ => panic!("metric {name:?} is not a counter"),
    }
}

/// Interns (or retrieves) the gauge named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name)
        .or_insert_with(|| Metric::G(Box::leak(Box::new(Gauge::default()))))
    {
        Metric::G(g) => g,
        _ => panic!("metric {name:?} is not a gauge"),
    }
}

/// Interns (or retrieves) the histogram named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name)
        .or_insert_with(|| Metric::H(Box::leak(Box::new(Histogram::default()))))
    {
        Metric::H(h) => h,
        _ => panic!("metric {name:?} is not a histogram"),
    }
}

/// Snapshot of every registered metric as event fields, in
/// lexicographic name order. Counters become `<name>`, gauges
/// `<name>`, histograms `<name>.count`, `<name>.sum` and a compact
/// `<name>.buckets` string (`"<lower>:<count>"` pairs joined by `,`).
pub fn snapshot_fields() -> Fields {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Fields::new();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::C(c) => out.push(field(name, c.get())),
            Metric::G(g) => out.push(field(name, g.get())),
            Metric::H(h) => {
                out.push(field(&format!("{name}.count"), h.count()));
                out.push(field(&format!("{name}.sum"), h.sum()));
                let buckets = h
                    .nonzero_buckets()
                    .iter()
                    .map(|(lo, n)| format!("{lo}:{n}"))
                    .collect::<Vec<_>>()
                    .join(",");
                out.push(field(&format!("{name}.buckets"), buckets));
            }
        }
    }
    out
}

/// A point-in-time reading of one registered metric, in structured
/// form. [`snapshot_fields`] flattens the same data into event fields;
/// this shape feeds consumers that need the numbers back — the
/// Prometheus-style exposition writer ([`crate::expose`]) and
/// percentile estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricReading {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: non-empty `(bucket_lower_bound, count)` pairs
    /// in ascending order, plus total count and sum.
    Histogram {
        /// Non-empty `(lower_bound, count)` pairs, ascending.
        buckets: Vec<(u64, u64)>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
    },
}

/// Reads every registered metric, in lexicographic name order.
pub fn readings() -> Vec<(&'static str, MetricReading)> {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.iter()
        .map(|(name, metric)| {
            let reading = match metric {
                Metric::C(c) => MetricReading::Counter(c.get()),
                Metric::G(g) => MetricReading::Gauge(g.get()),
                Metric::H(h) => MetricReading::Histogram {
                    buckets: h.nonzero_buckets(),
                    count: h.count(),
                    sum: h.sum(),
                },
            };
            (*name, reading)
        })
        .collect()
}

/// Inclusive upper bound of the pow2 bucket whose lower bound is `lo`:
/// the zero bucket holds only 0, bucket `[lo, 2lo)` tops out at
/// `2lo - 1`. This is the `le` label the exposition format uses.
pub fn bucket_le(lo: u64) -> u64 {
    if lo == 0 {
        0
    } else {
        lo.saturating_mul(2).saturating_sub(1)
    }
}

/// Estimates the `p`-th percentile (0–100) from pow2
/// `(lower_bound, count)` bucket pairs by **linear interpolation
/// within the target bucket** — the standard Prometheus-style
/// estimate. Exact only when observations are uniform inside the
/// bucket; callers should label the value as an estimate. Returns
/// `None` for an empty histogram.
pub fn bucket_percentile(pairs: &[(u64, u64)], p: f64) -> Option<f64> {
    let total: u64 = pairs.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return None;
    }
    // Rank in (0, total]: the observation index the percentile names.
    let target = (p / 100.0 * total as f64).clamp(f64::MIN_POSITIVE, total as f64);
    let mut seen = 0f64;
    for &(lo, n) in pairs {
        let here = n as f64;
        if seen + here >= target {
            if lo == 0 {
                return Some(0.0); // the zero bucket holds only zeros
            }
            let hi = lo.saturating_mul(2);
            let frac = ((target - seen) / here).clamp(0.0, 1.0);
            return Some(lo as f64 + frac * (hi - lo) as f64);
        }
        seen += here;
    }
    pairs.last().map(|&(lo, _)| bucket_le(lo) as f64)
}

/// Zeroes every registered metric (counters and histograms to 0,
/// gauges to 0.0). For tests and benchmark isolation; production code
/// never needs it.
pub fn reset_all() {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for metric in reg.values() {
        match metric {
            Metric::C(c) => c.value.store(0, Ordering::Relaxed),
            Metric::G(g) => g.bits.store(0f64.to_bits(), Ordering::Relaxed),
            Metric::H(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let c = counter("test.metrics.counter");
        c.add(2);
        c.add(3);
        assert!(c.get() >= 5);
        let g = gauge("test.metrics.gauge");
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        // Interning returns the same handle.
        assert!(std::ptr::eq(c, counter("test.metrics.counter")));
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let h = histogram("test.metrics.hist");
        h.reset();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let buckets = h.nonzero_buckets();
        // 0 -> bucket 0; 1 -> [1,2); 2,3 -> [2,4); 1024 -> [1024,2048).
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (1024, 1)]);
    }

    #[test]
    fn snapshot_lists_in_name_order() {
        counter("test.snap.a").add(1);
        gauge("test.snap.b").set(2.0);
        let fields = snapshot_fields();
        let names: Vec<&str> = fields
            .iter()
            .map(|(k, _)| k.as_str())
            .filter(|k| k.starts_with("test.snap."))
            .collect();
        assert_eq!(names, vec!["test.snap.a", "test.snap.b"]);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        counter("test.metrics.mismatch");
        gauge("test.metrics.mismatch");
    }

    #[test]
    fn readings_mirror_snapshot_fields() {
        counter("test.readings.c").add(7);
        let h = histogram("test.readings.h");
        h.reset();
        h.observe(5);
        let all = readings();
        let c = all.iter().find(|(n, _)| *n == "test.readings.c");
        assert!(matches!(c, Some((_, MetricReading::Counter(v))) if *v >= 7));
        let hist = all.iter().find(|(n, _)| *n == "test.readings.h");
        let Some((_, MetricReading::Histogram { buckets, count, sum })) = hist else {
            panic!("histogram reading present");
        };
        assert_eq!(*count, 1);
        assert_eq!(*sum, 5);
        assert_eq!(buckets, &vec![(4, 1)]);
    }

    #[test]
    fn bucket_percentile_interpolates_within_the_bucket() {
        // 10 observations in [256, 512): p50 names the 5th, estimated
        // halfway through the bucket.
        let pairs = vec![(256u64, 10u64)];
        let p50 = bucket_percentile(&pairs, 50.0).expect("non-empty");
        assert_eq!(p50, 256.0 + 0.5 * 256.0);
        // p100 reaches the bucket's top edge.
        let p100 = bucket_percentile(&pairs, 100.0).expect("non-empty");
        assert_eq!(p100, 512.0);
        // Mixed buckets: 3 in [2,4), 1 in [1024,2048); p75 still lands
        // in the first, p99 in the last.
        let mixed = vec![(2u64, 3u64), (1024u64, 1u64)];
        let p75 = bucket_percentile(&mixed, 75.0).expect("non-empty");
        assert!((2.0..=4.0).contains(&p75), "got {p75}");
        let p99 = bucket_percentile(&mixed, 99.0).expect("non-empty");
        assert!((1024.0..=2048.0).contains(&p99), "got {p99}");
        // Zeros stay exactly zero, and empty histograms have no answer.
        assert_eq!(bucket_percentile(&[(0, 4)], 50.0), Some(0.0));
        assert_eq!(bucket_percentile(&[], 50.0), None);
    }

    #[test]
    fn bucket_le_is_the_inclusive_upper_bound() {
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(256), 511);
    }
}
