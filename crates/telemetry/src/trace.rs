//! Trace-level operations: validation and the deterministic view.
//!
//! A *trace* is a JSONL file (or string) of events as written by
//! [`crate::sink::JsonlSink`] / rendered by
//! [`crate::MemoryRecorder::to_jsonl`]. Two operations matter:
//!
//! - [`validate_trace`] enforces the wire contract (every line parses,
//!   required keys present, sequence numbers strictly increasing) —
//!   the check `daisy report` and the CI smoke step run.
//! - [`deterministic_view`] reduces a trace to its deterministic
//!   content: events marked `"nd":true` are dropped and the `"wall"`
//!   member is stripped, then each line is re-serialized through the
//!   byte-stable writer. For a fixed seed, the result is byte-identical
//!   across runs and across `DAISY_THREADS` settings — the testable
//!   form of the determinism contract.

use crate::json::Json;

/// Summary returned by [`validate_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total number of events (lines).
    pub events: usize,
    /// Number of events carrying the `nd` marker.
    pub nd_events: usize,
    /// Distinct event names in first-seen order.
    pub names: Vec<String>,
}

/// Validates a JSONL trace: every non-empty line must parse as a JSON
/// object with a `"seq"` unsigned integer and an `"event"` string, and
/// the sequence numbers must be strictly increasing. Returns summary
/// statistics on success and a line-numbered message on the first
/// violation.
pub fn validate_trace(jsonl: &str) -> Result<TraceStats, String> {
    let mut stats = TraceStats {
        events: 0,
        nd_events: 0,
        names: Vec::new(),
    };
    let mut last_seq: Option<u64> = None;
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = lineno + 1;
        let value = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        let seq = value
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {n}: missing or non-integer \"seq\""))?;
        let name = value
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing \"event\" name"))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!(
                    "line {n}: sequence number {seq} is not greater than {prev}"
                ));
            }
        }
        last_seq = Some(seq);
        stats.events += 1;
        if value.get("nd") == Some(&Json::Bool(true)) {
            stats.nd_events += 1;
        }
        if !stats.names.iter().any(|existing| existing == name) {
            stats.names.push(name.to_string());
        }
    }
    Ok(stats)
}

/// Projects a trace onto its deterministic content: drops events with
/// `"nd":true`, removes each surviving event's `"wall"` member, and
/// re-serializes one compact JSON object per line. Fails on any line
/// that does not parse.
pub fn deterministic_view(jsonl: &str) -> Result<String, String> {
    let mut out = String::with_capacity(jsonl.len());
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if value.get("nd") == Some(&Json::Bool(true)) {
            continue;
        }
        let Json::Obj(members) = value else {
            return Err(format!("line {}: not a JSON object", lineno + 1));
        };
        let kept = Json::Obj(
            members
                .into_iter()
                .filter(|(k, _)| k != "wall")
                .collect(),
        );
        kept.write(&mut out);
        out.push('\n');
    }
    Ok(out)
}

/// Splits a trace whose **final** line may be torn by a crash
/// mid-write. A tear is an *unterminated* final line that does not
/// parse: the recorder writes each event as `<json>\n`, so a line
/// that ends with a newline was written completely and stays subject
/// to normal validation even when malformed. Returns the prefix up to
/// the last line boundary plus the torn fragment (if any) for the
/// caller's warning. Only the unterminated tail is eligible: garbage
/// in the middle of a trace is still a validation error, not a tear,
/// so this cannot hide real corruption.
pub fn split_torn_tail(jsonl: &str) -> (&str, Option<&str>) {
    if jsonl.is_empty() || jsonl.ends_with('\n') {
        return (jsonl, None);
    }
    let start = jsonl.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let last = &jsonl[start..];
    if Json::parse(last).is_ok() {
        (jsonl, None)
    } else {
        (&jsonl[..start], Some(last))
    }
}

/// Parses every event line of a trace into [`Json`] values, skipping
/// blank lines. The parsed objects keep their full (deterministic and
/// wall-clock) content; used by the report renderer.
pub fn parse_trace(jsonl: &str) -> Result<Vec<Json>, String> {
    jsonl
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{field, Event};

    fn sample_trace() -> String {
        let lines = [
            Event::new("train_start", vec![field("iterations", 10usize)]).to_json_line(0),
            Event::new("epoch", vec![field("epoch", 0usize), field("d_loss", 0.5f32)])
                .with_wall(vec![field("ms", 3.25f64)])
                .to_json_line(1),
            Event::new("metrics", vec![field("pool.jobs", 7usize)])
                .non_deterministic()
                .to_json_line(2),
        ];
        lines.join("\n") + "\n"
    }

    #[test]
    fn validates_a_good_trace() {
        let stats = validate_trace(&sample_trace()).unwrap();
        assert_eq!(stats.events, 3);
        assert_eq!(stats.nd_events, 1);
        assert_eq!(stats.names, vec!["train_start", "epoch", "metrics"]);
    }

    #[test]
    fn rejects_decreasing_seq() {
        let bad = format!(
            "{}\n{}\n",
            Event::new("a", vec![]).to_json_line(5),
            Event::new("b", vec![]).to_json_line(5)
        );
        let err = validate_trace(&bad).unwrap_err();
        assert!(err.contains("not greater"), "{err}");
    }

    #[test]
    fn rejects_missing_keys_and_garbage() {
        assert!(validate_trace("{\"event\":\"x\"}\n").is_err());
        assert!(validate_trace("{\"seq\":0}\n").is_err());
        assert!(validate_trace("not json\n").is_err());
    }

    #[test]
    fn deterministic_view_strips_nd_and_wall() {
        let view = deterministic_view(&sample_trace()).unwrap();
        assert_eq!(
            view,
            "{\"seq\":0,\"event\":\"train_start\",\"iterations\":10}\n\
             {\"seq\":1,\"event\":\"epoch\",\"epoch\":0,\"d_loss\":0.5}\n"
        );
    }

    #[test]
    fn deterministic_view_is_stable_under_reserialization() {
        let view = deterministic_view(&sample_trace()).unwrap();
        assert_eq!(deterministic_view(&view).unwrap(), view);
    }

    #[test]
    fn torn_final_line_is_split_off() {
        let whole = sample_trace();
        // Tear the trace mid-way through its final line, as a crash
        // during a buffered write would.
        let torn_at = whole.len() - 10;
        let torn = &whole[..torn_at];
        let (prefix, tail) = split_torn_tail(torn);
        let fragment = tail.expect("the cut line is reported as torn");
        assert!(!fragment.is_empty());
        assert!(torn.ends_with(fragment));
        // The surviving prefix is exactly the intact lines.
        let stats = validate_trace(prefix).expect("prefix validates");
        assert_eq!(stats.events, 2);
    }

    #[test]
    fn intact_traces_have_no_torn_tail() {
        let whole = sample_trace();
        let (prefix, tail) = split_torn_tail(&whole);
        assert_eq!(prefix, whole);
        assert!(tail.is_none());
        assert_eq!(split_torn_tail(""), ("", None));
        assert_eq!(split_torn_tail("\n\n"), ("\n\n", None));
    }

    #[test]
    fn mid_file_garbage_is_not_treated_as_a_tear() {
        let bad = format!(
            "{}\ngarbage-line\n{}\n",
            Event::new("a", vec![]).to_json_line(0),
            Event::new("b", vec![]).to_json_line(1)
        );
        let (prefix, tail) = split_torn_tail(&bad);
        assert_eq!(prefix, bad, "a parseable final line means no tear");
        assert!(tail.is_none());
        assert!(validate_trace(prefix).is_err(), "corruption still errors");
    }
}
