//! Trace events: the unit of the deterministic observability stream.
//!
//! An [`Event`] is a named record with flat key/value fields. Its
//! identity is **logical**: epoch and step counters, sequence numbers,
//! loss values — never wall-clock time. Wall-clock measurements are
//! allowed but must live in the separate [`Event::wall`] field list,
//! which [`crate::trace::deterministic_view`] strips before comparing
//! traces; an event whose whole content is machine-dependent (e.g. a
//! metrics-registry snapshot) sets [`Event::nd`] and is dropped from
//! the deterministic view entirely.

use crate::json::{write_escaped, write_num};
use std::fmt::Write as _;

/// A telemetry field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, indices, sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Non-finite values serialize as the strings
    /// `"NaN"` / `"inf"` / `"-inf"` (JSON has no NaN), which keeps a
    /// NaN-carrying guard trip representable and still deterministic.
    F64(f64),
    /// Text (names, enum tags, error messages).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => write_num(*v, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// A list of named fields, in emission order.
pub type Fields = Vec<(String, Value)>;

/// Builds one `(key, value)` field (sugar for emission sites).
pub fn field(key: &str, value: impl Into<Value>) -> (String, Value) {
    (key.to_string(), value.into())
}

/// One structured trace event.
///
/// Serialized as a single JSON line:
/// `{"seq":N,"event":"<name>",<fields...>[,"nd":true][,"wall":{...}]}`.
/// The sequence number is assigned by the receiving [`crate::Recorder`]
/// (each recorder numbers its own stream from 0), so for a fixed seed
/// the `seq` of every deterministic event is itself deterministic.
///
/// The keys `seq`, `event`, `nd` and `wall` are reserved; field names
/// must not collide with them.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event type, from [`crate::schema`].
    pub name: &'static str,
    /// Deterministic fields (logical time, losses, counters, tags).
    pub fields: Fields,
    /// Non-deterministic fields (wall-clock durations and other
    /// machine-dependent measurements). Stripped by
    /// [`crate::trace::deterministic_view`].
    pub wall: Fields,
    /// Marks the whole event as non-deterministic (dropped from the
    /// deterministic view). Used for metrics-registry snapshots.
    pub nd: bool,
}

impl Event {
    /// A deterministic event with the given fields.
    pub fn new(name: &'static str, fields: Fields) -> Self {
        Event {
            name,
            fields,
            wall: Vec::new(),
            nd: false,
        }
    }

    /// Attaches non-deterministic (wall-clock) fields.
    pub fn with_wall(mut self, wall: Fields) -> Self {
        self.wall = wall;
        self
    }

    /// Marks the whole event non-deterministic.
    pub fn non_deterministic(mut self) -> Self {
        self.nd = true;
        self
    }

    /// Looks up a deterministic field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes to one JSON line (no trailing newline) under the
    /// given recorder-assigned sequence number.
    pub fn to_json_line(&self, seq: u64) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        let _ = write!(out, "{{\"seq\":{seq},\"event\":");
        write_escaped(self.name, &mut out);
        for (k, v) in &self.fields {
            out.push(',');
            write_escaped(k, &mut out);
            out.push(':');
            v.write_json(&mut out);
        }
        if self.nd {
            out.push_str(",\"nd\":true");
        }
        if !self.wall.is_empty() {
            out.push_str(",\"wall\":{");
            for (i, (k, v)) in self.wall.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, &mut out);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn serializes_in_field_order() {
        let e = Event::new(
            "epoch",
            vec![
                field("epoch", 3usize),
                field("d_loss", 0.5f32),
                field("tag", "x"),
                field("ok", true),
            ],
        );
        assert_eq!(
            e.to_json_line(7),
            r#"{"seq":7,"event":"epoch","epoch":3,"d_loss":0.5,"tag":"x","ok":true}"#
        );
    }

    #[test]
    fn wall_and_nd_render() {
        let e = Event::new("metrics", vec![field("n", 1usize)])
            .non_deterministic()
            .with_wall(vec![field("ms", 1.25f64)]);
        let line = e.to_json_line(0);
        assert_eq!(
            line,
            r#"{"seq":0,"event":"metrics","n":1,"nd":true,"wall":{"ms":1.25}}"#
        );
        // The line is valid JSON.
        assert!(Json::parse(&line).is_ok());
    }

    #[test]
    fn nan_fields_stay_valid_json() {
        let e = Event::new("guard_trip", vec![field("d_loss", f32::NAN)]);
        let line = e.to_json_line(1);
        assert!(line.contains(r#""d_loss":"NaN""#));
        assert!(Json::parse(&line).is_ok());
    }

    #[test]
    fn get_finds_fields() {
        let e = Event::new("x", vec![field("a", 1usize)]);
        assert_eq!(e.get("a"), Some(&Value::U64(1)));
        assert_eq!(e.get("b"), None);
    }
}
