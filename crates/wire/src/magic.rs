//! The single registry of on-disk and on-wire magic numbers.
//!
//! Every daisy file format and network frame opens with a fixed 4- or
//! 8-byte magic so readers can reject foreign bytes before decoding a
//! single field. Each magic is defined exactly once, here; the crates
//! that own a format re-export the constant they use (`CHUNK_MAGIC`,
//! `MANIFEST_MAGIC`, …) so their public APIs are unchanged. The
//! workspace lint (rule W001) enforces the "exactly once, in
//! `daisy-wire`" invariant: a byte-string magic constant declared in
//! any other crate, or two constants sharing one value, is a finding.
//!
//! The trailing digit is a format version: bumping an encoding means a
//! new magic, so an old reader fails loudly on a new file instead of
//! misdecoding it.

/// Sealed column-chunk files in the chunked store (`chunk-NNNNNN.dch`).
pub const CHUNK: &[u8; 8] = b"DAISYCH1";

/// The chunked store's manifest (`manifest.dm`): schema + chunk index.
pub const MANIFEST: &[u8; 8] = b"DAISYMF1";

/// The ingest journal (`journal.dij`): crash-safe resumable ingestion.
pub const INGEST_JOURNAL: &[u8; 8] = b"DAISYIJ1";

/// Persisted synthesizer models (`*.daisy`).
pub const SYNTH: &[u8; 8] = b"DAISYSY1";

/// Footer sentinel sealing a persisted synthesizer: the whole-file CRC
/// trailer that distinguishes a complete model from a torn one.
pub const SYNTH_FOOTER: &[u8; 8] = b"DAISYCRC";

/// Training checkpoints written by the crash-safe checkpoint plane.
pub const CHECKPOINT: &[u8; 8] = b"DAISYCK1";

/// Serving protocol: client request frame.
pub const SERVE_REQUEST: &[u8; 4] = b"DSRQ";

/// Serving protocol: stream header frame (schema + generation).
pub const SERVE_HEADER: &[u8; 4] = b"DSRH";

/// Serving protocol: row-batch data frame.
pub const SERVE_DATA: &[u8; 4] = b"DSRD";

/// Serving protocol: end-of-stream frame (carries drain/resume flags).
pub const SERVE_END: &[u8; 4] = b"DSRE";
