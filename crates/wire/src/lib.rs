//! # daisy-wire
//!
//! The shared binary wire format of the workspace: a little-endian
//! primitive writer/reader, CRC-64 section framing for corruption
//! detection, and crash-safe file replacement (write-to-temp → fsync →
//! atomic rename).
//!
//! Extracted from `daisy-core`'s private `wire` module so the data
//! plane (`daisy-data`'s chunked column store and ingest journal) and
//! the model plane (`daisy-core`'s persisted synthesizers and training
//! checkpoints) share one encoding discipline: integers, tensors, and
//! torn/corrupted-file detection cannot drift apart between formats.
//! `daisy-core` re-exports everything here through `core::wire` for its
//! internal callers.
//!
//! Every on-disk format built on this crate follows the same contract:
//!
//! * sections are `[len][crc64][bytes]` frames — any single-byte flip
//!   (indeed any ≤ 64-bit burst) inside a section is detected at read
//!   time and surfaces as a typed error, never as silently wrong data;
//! * files are replaced atomically — a crash mid-write leaves either
//!   the old file or the new file on disk, never a torn mix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod magic;

use daisy_tensor::Tensor;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Decoding errors are plain messages; callers wrap them in their own
/// typed errors (`PersistError`, `CheckpointError`, `DataError`).
pub type WireError = String;

// ---------------------------------------------------------------------
// CRC-64 (ECMA-182, reflected) with a compile-time table
// ---------------------------------------------------------------------

const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-64 over a byte stream: feed chunks with
/// [`Crc64::update`] and read the checksum with [`Crc64::finish`].
/// `Crc64` over concatenated chunks equals [`crc64`] over the
/// concatenation, so a producer that never materializes its full
/// payload (the serving plane's row stream) can still seal it with the
/// same whole-payload checksum a buffering producer would write.
#[derive(Debug, Clone)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// A fresh checksum accumulator.
    pub fn new() -> Self {
        Crc64 { state: !0u64 }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = CRC64_TABLE[((self.state ^ b as u64) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// The checksum of every byte fed so far. Does not consume the
    /// accumulator; further updates continue from the same state.
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

/// CRC-64 checksum of `bytes`. Any single-byte (indeed any ≤ 64-bit
/// burst) corruption changes the checksum, which is what the persist,
/// checkpoint, and chunk-store formats rely on to turn silent bit rot
/// into a typed error.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = Crc64::new();
    crc.update(bytes);
    crc.finish()
}

// ---------------------------------------------------------------------
// primitive writer / reader
// ---------------------------------------------------------------------

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct Writer {
    /// The encoded bytes so far.
    pub buf: Vec<u8>,
}

impl Writer {
    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Appends a little-endian `f32`.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }
    /// Appends a length-prefixed `u32` slice (category codes).
    pub fn u32s(&mut self, v: &[u32]) {
        self.usize(v.len());
        for &x in v {
            self.u32(x);
        }
    }
    /// Appends a length-prefixed `usize` slice.
    pub fn usizes(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }
    /// Appends a tensor: shape then row-major `f32` payload.
    pub fn tensor(&mut self, t: &Tensor) {
        self.usizes(t.shape());
        for &x in t.data() {
            self.f32(x);
        }
    }
    /// Appends a length-prefixed tensor list.
    pub fn tensors(&mut self, ts: &[Tensor]) {
        self.usize(ts.len());
        for t in ts {
            self.tensor(t);
        }
    }

    /// Appends `body` as a checksummed section: `[len][crc64][bytes]`.
    /// A reader verifies the checksum before decoding the section, so
    /// corruption is localized and reported per section.
    pub fn section(&mut self, body: &Writer) {
        self.usize(body.buf.len());
        self.u64(crc64(&body.buf));
        self.buf.extend_from_slice(&body.buf);
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    /// Takes the next `n` bytes, or a truncation error.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "truncated file: needed {n} bytes at offset {}",
                self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }
    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Reads a `u64` and converts it to `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| "length overflows usize".to_string())
    }
    /// A `usize` validated against the buffer length, so a corrupted
    /// length cannot trigger a huge allocation.
    pub fn len(&mut self) -> Result<usize, WireError> {
        let v = self.usize()?;
        if v > self.buf.len() {
            return Err(format!("implausible length {v} at offset {}", self.pos));
        }
        Ok(v)
    }
    /// Reads a little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    /// Reads a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Reads a one-byte bool.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }
    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| format!("bad utf8: {e}"))
    }
    /// Reads a length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let n = self.len()?;
        (0..n).map(|_| self.f64()).collect()
    }
    /// Reads a length-prefixed `u32` slice.
    pub fn u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.len()?;
        if n * 4 > self.buf.len() {
            return Err("implausible u32 list length".to_string());
        }
        (0..n).map(|_| self.u32()).collect()
    }
    /// Reads a length-prefixed `usize` slice.
    pub fn usizes(&mut self) -> Result<Vec<usize>, WireError> {
        let n = self.len()?;
        (0..n).map(|_| self.usize()).collect()
    }
    /// Reads a tensor written by [`Writer::tensor`].
    pub fn tensor(&mut self) -> Result<Tensor, WireError> {
        let shape = self.usizes()?;
        let numel: usize = shape.iter().product();
        if numel * 4 > self.buf.len() {
            return Err("implausible tensor size".to_string());
        }
        let data: Result<Vec<f32>, _> = (0..numel).map(|_| self.f32()).collect();
        Ok(Tensor::from_vec(data?, &shape))
    }
    /// Reads a length-prefixed tensor list.
    pub fn tensors(&mut self) -> Result<Vec<Tensor>, WireError> {
        let n = self.len()?;
        (0..n).map(|_| self.tensor()).collect()
    }

    /// Reads a section written by [`Writer::section`], verifying its
    /// checksum, and returns a reader over the section body.
    pub fn section(&mut self) -> Result<Reader<'a>, WireError> {
        let n = self.len()?;
        let stored = self.u64()?;
        let body = self.take(n)?;
        let actual = crc64(body);
        if actual != stored {
            return Err(format!(
                "section checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            ));
        }
        Ok(Reader::new(body))
    }
}

// ---------------------------------------------------------------------
// crash-safe file replacement
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` crash-safely: the content goes to a sibling
/// temp file, is fsynced, and then atomically renamed over `path`. A
/// crash at any point leaves either the old file or the new file, never
/// a torn mix.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = sibling(path, "tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// `path` with `.{ext}` appended (keeps the original extension, so
/// `model.bin` → `model.bin.tmp`).
pub fn sibling(path: &Path, ext: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".{ext}"));
    PathBuf::from(name)
}

/// Best-effort fsync of the containing directory, making the rename
/// itself durable on platforms that support directory fsync.
pub fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Moves a corrupt file out of the way as `<path>.corrupt-N`, choosing
/// the first free `N`, and returns the quarantine path. The corrupt
/// bytes are preserved for post-mortem inspection rather than deleted;
/// the original path is freed so a rebuild can take its place. Returns
/// `None` when the file vanished or every rename failed.
pub fn quarantine(path: &Path) -> Option<PathBuf> {
    for n in 0..1000 {
        let dst = sibling(path, &format!("corrupt-{n}"));
        if dst.exists() {
            continue;
        }
        if std::fs::rename(path, &dst).is_ok() {
            sync_parent_dir(path);
            return Some(dst);
        }
        if !path.exists() {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch path in the system temp directory (per-process,
    /// per-call) so parallel test binaries never race on a filename.
    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("daisy-wire-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn crc64_known_properties() {
        assert_eq!(crc64(b""), 0);
        // Any single-byte change must move the checksum.
        let base = crc64(b"daisy checkpoint payload");
        let mut corrupted = b"daisy checkpoint payload".to_vec();
        for i in 0..corrupted.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                corrupted[i] ^= flip;
                assert_ne!(crc64(&corrupted), base, "byte {i} flip {flip:#x}");
                corrupted[i] ^= flip;
            }
        }
        assert_eq!(crc64(&corrupted), base);
    }

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::default();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.usize(42);
        w.f32(-1.5);
        w.f64(std::f64::consts::PI);
        w.bool(true);
        w.str("héllo");
        w.f64s(&[1.0, 2.0]);
        w.u32s(&[9, 8, 7]);
        w.usizes(&[3, 4, 5]);
        w.tensor(&Tensor::from_slice(&[1.0, 2.0, 3.0]));
        let mut r = Reader::new(&w.buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f32().unwrap(), -1.5);
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.f64s().unwrap(), vec![1.0, 2.0]);
        assert_eq!(r.u32s().unwrap(), vec![9, 8, 7]);
        assert_eq!(r.usizes().unwrap(), vec![3, 4, 5]);
        assert_eq!(r.tensor().unwrap().data(), &[1.0, 2.0, 3.0]);
        assert!(r.is_empty());
    }

    #[test]
    fn sections_detect_corruption() {
        let mut body = Writer::default();
        body.str("payload");
        body.u64(99);
        let mut w = Writer::default();
        w.section(&body);
        // Clean read.
        let mut r = Reader::new(&w.buf);
        let mut s = r.section().unwrap();
        assert_eq!(s.str().unwrap(), "payload");
        assert_eq!(s.u64().unwrap(), 99);
        // Flip each body byte in turn: the section read must fail.
        for i in 16..w.buf.len() {
            let mut bad = w.buf.clone();
            bad[i] ^= 0x10;
            let mut r = Reader::new(&bad);
            assert!(r.section().is_err(), "corruption at byte {i} undetected");
        }
    }

    #[test]
    fn atomic_write_replaces_and_survives() {
        let path = scratch("atomic");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // The temp file does not linger.
        assert!(!sibling(&path, "tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quarantine_moves_and_numbers() {
        let path = scratch("quarantine");
        std::fs::write(&path, b"bad bytes").unwrap();
        let q0 = quarantine(&path).unwrap();
        assert!(q0.to_string_lossy().ends_with(".corrupt-0"));
        assert!(!path.exists());
        assert_eq!(std::fs::read(&q0).unwrap(), b"bad bytes");
        // A second corruption of the same path gets the next slot.
        std::fs::write(&path, b"worse bytes").unwrap();
        let q1 = quarantine(&path).unwrap();
        assert!(q1.to_string_lossy().ends_with(".corrupt-1"));
        // A vanished file quarantines to nothing.
        assert!(quarantine(&path).is_none());
        std::fs::remove_file(&q0).ok();
        std::fs::remove_file(&q1).ok();
    }
}
