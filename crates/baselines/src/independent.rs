//! Independent-marginals sanity baseline: each attribute is sampled
//! from its own empirical marginal, destroying all correlations. Not in
//! the paper's method list, but invaluable as a floor — any synthesizer
//! that fails to beat it is not capturing joint structure.

use daisy_core::TableSynthesizer;
use daisy_data::{Column, Schema, Table};
use daisy_tensor::Rng;

/// A fitted independent-marginals sampler.
pub struct IndependentMarginals {
    schema: Schema,
    columns: Vec<Column>,
}

impl IndependentMarginals {
    /// "Fits" by keeping the original columns (the empirical marginals).
    pub fn fit(table: &Table) -> IndependentMarginals {
        assert!(table.n_rows() > 0, "cannot fit on an empty table");
        IndependentMarginals {
            schema: table.schema().clone(),
            columns: table.columns().to_vec(),
        }
    }

    /// Generates `n` records, drawing each attribute independently with
    /// replacement from its marginal.
    pub fn generate(&self, n: usize, rng: &mut Rng) -> Table {
        let columns: Vec<Column> = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Num(v) => {
                    Column::Num((0..n).map(|_| v[rng.usize(v.len())]).collect())
                }
                Column::Cat { codes, categories } => Column::Cat {
                    codes: (0..n).map(|_| codes[rng.usize(codes.len())]).collect(),
                    categories: categories.clone(),
                },
            })
            .collect();
        Table::new(self.schema.clone(), columns)
    }
}

impl TableSynthesizer for IndependentMarginals {
    fn synthesize(&self, n: usize, rng: &mut Rng) -> Table {
        self.generate(n, rng)
    }

    fn method_name(&self) -> String {
        "Independent".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Schema};

    fn correlated_table(n: usize, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng.usize(2) as u32;
            a.push(v);
            b.push(v); // perfectly correlated
        }
        Table::new(
            Schema::new(vec![
                Attribute::categorical("a"),
                Attribute::categorical("b"),
            ]),
            vec![
                Column::cat_with_domain(a, 2),
                Column::cat_with_domain(b, 2),
            ],
        )
    }

    #[test]
    fn preserves_marginals() {
        let t = correlated_table(4000, 0);
        let im = IndependentMarginals::fit(&t);
        let mut rng = Rng::seed_from_u64(1);
        let syn = im.generate(4000, &mut rng);
        let p_real = t.column(0).as_cat().iter().filter(|&&v| v == 1).count() as f64 / 4000.0;
        let p_syn = syn.column(0).as_cat().iter().filter(|&&v| v == 1).count() as f64 / 4000.0;
        assert!((p_real - p_syn).abs() < 0.03);
    }

    #[test]
    fn destroys_correlations() {
        let t = correlated_table(4000, 2);
        let im = IndependentMarginals::fit(&t);
        let mut rng = Rng::seed_from_u64(3);
        let syn = im.generate(4000, &mut rng);
        let agree = syn
            .column(0)
            .as_cat()
            .iter()
            .zip(syn.column(1).as_cat())
            .filter(|(x, y)| x == y)
            .count() as f64
            / 4000.0;
        // Real agreement is 1.0; independent sampling gives ~0.5.
        assert!((agree - 0.5).abs() < 0.05, "agreement = {agree}");
    }
}
