//! Variational autoencoder baseline (§6.3): encoder/decoder MLPs over
//! the same reversible record transformation as the GAN, trained on the
//! reconstruction + KL objective. Reconstruction uses cross-entropy on
//! categorical (softmax) blocks and MSE on numerical blocks, following
//! the paper's BCE/MSE split.

use daisy_core::output_head::apply_output_head;
use daisy_core::TableSynthesizer;
use daisy_data::{OutputBlockKind, RecordCodec, Table, TransformConfig};
use daisy_nn::{zero_grads, Activation, Adam, Linear, Module, Optimizer, Sequential};
use daisy_tensor::{Rng, Tensor, Var};

/// VAE training configuration.
#[derive(Debug, Clone)]
pub struct VaeConfig {
    /// Data transformation (defaults to gn/ht like the GAN default).
    pub transform: TransformConfig,
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Encoder/decoder hidden widths.
    pub hidden: Vec<usize>,
    /// Training iterations (minibatches).
    pub iterations: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight of the KL regularizer.
    pub kl_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VaeConfig {
    fn default() -> Self {
        VaeConfig {
            transform: TransformConfig::gn_ht(),
            latent_dim: 16,
            hidden: vec![128],
            iterations: 2000,
            batch_size: 64,
            lr: 1e-3,
            kl_weight: 1.0,
            seed: 7,
        }
    }
}

/// A fitted VAE synthesizer.
pub struct Vae {
    codec: RecordCodec,
    decoder_body: Sequential,
    decoder_head: Linear,
    latent_dim: usize,
    /// Mean total loss of the final 10% of iterations.
    final_loss: f32,
}

impl Vae {
    /// Trains a VAE on `table`.
    pub fn fit(table: &Table, config: &VaeConfig) -> Vae {
        assert!(table.n_rows() > 0, "cannot fit on an empty table");
        let mut rng = Rng::seed_from_u64(config.seed);
        let codec = RecordCodec::fit(table, &config.transform);
        let data = codec.encode_table(table);
        let width = codec.width();
        let blocks = codec.output_blocks();

        // Encoder: x -> hidden -> (mu ++ logvar).
        let mut enc = Sequential::new();
        let mut prev = width;
        for &h in &config.hidden {
            enc = enc
                .push(Linear::new(prev, h, &mut rng))
                .push(Activation::Relu);
            prev = h;
        }
        let enc_out = Linear::new(prev, 2 * config.latent_dim, &mut rng);

        // Decoder: z -> hidden -> raw -> attribute-aware head.
        let mut dec = Sequential::new();
        let mut prev = config.latent_dim;
        for &h in config.hidden.iter().rev() {
            dec = dec
                .push(Linear::new(prev, h, &mut rng))
                .push(Activation::Relu);
            prev = h;
        }
        let dec_head = Linear::new(prev, width, &mut rng);

        let mut params = enc.params();
        params.extend(enc_out.params());
        params.extend(dec.params());
        params.extend(dec_head.params());
        let mut opt = Adam::new(params.clone(), config.lr);

        let n = data.rows();
        let tail_start = config.iterations - config.iterations / 10;
        let mut tail_loss = (0.0f64, 0usize);
        for it in 0..config.iterations {
            let idx: Vec<usize> = (0..config.batch_size).map(|_| rng.usize(n)).collect();
            let batch = data.gather_rows(&idx);
            let m = batch.rows();

            zero_grads(&params);
            let x = Var::constant(batch.clone());
            let stats = enc_out.forward(&enc.forward(&x));
            let mu = stats.slice_cols(0, config.latent_dim);
            let logvar = stats.slice_cols(config.latent_dim, 2 * config.latent_dim);
            // Reparameterization: z = mu + eps * exp(logvar / 2).
            let eps = Var::constant(Tensor::randn(&[m, config.latent_dim], &mut rng));
            let z = mu.add(&eps.mul(&logvar.mul_scalar(0.5).exp()));
            let recon = apply_output_head(&dec_head.forward(&dec.forward(&z)), &blocks);

            // Reconstruction loss per block kind.
            let mut loss = reconstruction_loss(&recon, &batch, &blocks);
            // KL(q(z|x) || N(0, I)) = -0.5 Σ (1 + logvar - mu² - e^logvar).
            let kl = mu
                .sqr()
                .add(&logvar.exp())
                .sub(&logvar)
                .add_scalar(-1.0)
                .mul_scalar(0.5)
                .sum()
                .mul_scalar(1.0 / m as f32);
            loss = loss.add(&kl.mul_scalar(config.kl_weight));
            let loss_val = loss.value().data()[0];
            loss.backward();
            opt.step();
            if it >= tail_start {
                tail_loss.0 += loss_val as f64;
                tail_loss.1 += 1;
            }
        }

        Vae {
            codec,
            decoder_body: dec,
            decoder_head: dec_head,
            latent_dim: config.latent_dim,
            final_loss: (tail_loss.0 / tail_loss.1.max(1) as f64) as f32,
        }
    }

    /// Mean loss over the final iterations (training diagnostics).
    pub fn final_loss(&self) -> f32 {
        self.final_loss
    }

    /// Generates `n` synthetic records by decoding prior samples.
    pub fn generate(&self, n: usize, rng: &mut Rng) -> Table {
        let blocks = self.codec.output_blocks();
        let mut all = Tensor::zeros(&[n, self.codec.width()]);
        let mut row = 0;
        while row < n {
            let batch = (n - row).min(512);
            let z = Var::constant(Tensor::randn(&[batch, self.latent_dim], rng));
            let out = apply_output_head(
                &self.decoder_head.forward(&self.decoder_body.forward(&z)),
                &blocks,
            );
            for b in 0..batch {
                all.row_mut(row + b).copy_from_slice(out.value().row(b));
            }
            row += batch;
        }
        self.codec.decode_table(&all)
    }
}

/// Cross-entropy on probability blocks, MSE on scalar blocks; mean per
/// record.
fn reconstruction_loss(
    recon: &Var,
    target: &Tensor,
    blocks: &[daisy_data::OutputBlock],
) -> Var {
    let m = target.rows() as f32;
    let mut total: Option<Var> = None;
    for b in blocks {
        let pred = recon.slice_cols(b.lo, b.hi);
        let tgt = target.slice_cols(b.lo, b.hi);
        let term = match b.kind {
            OutputBlockKind::Softmax => pred
                .ln_eps(1e-7)
                .mul(&Var::constant(tgt))
                .sum()
                .mul_scalar(-1.0 / m),
            OutputBlockKind::GmmValueAndComponent => {
                let w = b.width();
                let val_mse = pred
                    .slice_cols(0, 1)
                    .mse(&tgt.slice_cols(0, 1));
                let comp_ce = pred
                    .slice_cols(1, w)
                    .ln_eps(1e-7)
                    .mul(&Var::constant(tgt.slice_cols(1, w)))
                    .sum()
                    .mul_scalar(-1.0 / m);
                val_mse.add(&comp_ce)
            }
            OutputBlockKind::Tanh | OutputBlockKind::Sigmoid => pred.mse(&tgt),
        };
        total = Some(match total {
            Some(t) => t.add(&term),
            None => term,
        });
    }
    total.expect("no output blocks")
}

impl TableSynthesizer for Vae {
    fn synthesize(&self, n: usize, rng: &mut Rng) -> Table {
        self.generate(n, rng)
    }

    fn method_name(&self) -> String {
        "VAE".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Column, Schema};

    fn blob_table(n: usize, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut cs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.bool(0.4) as u32;
            ys.push(y);
            xs.push(rng.normal_ms(if y == 1 { 4.0 } else { -4.0 }, 1.0));
            cs.push(if rng.bool(0.8) { y } else { 1 - y });
        }
        Table::new(
            Schema::with_label(
                vec![
                    Attribute::numerical("x"),
                    Attribute::categorical("c"),
                    Attribute::categorical("y"),
                ],
                2,
            ),
            vec![
                Column::Num(xs),
                Column::cat_with_domain(cs, 2),
                Column::cat_with_domain(ys, 2),
            ],
        )
    }

    fn quick_config() -> VaeConfig {
        VaeConfig {
            latent_dim: 4,
            hidden: vec![32],
            iterations: 400,
            batch_size: 32,
            ..VaeConfig::default()
        }
    }

    #[test]
    fn fits_and_generates() {
        let table = blob_table(400, 0);
        let vae = Vae::fit(&table, &quick_config());
        let mut rng = Rng::seed_from_u64(1);
        let syn = vae.generate(200, &mut rng);
        assert_eq!(syn.n_rows(), 200);
        assert_eq!(syn.schema(), table.schema());
        assert!(vae.final_loss().is_finite());
    }

    #[test]
    fn captures_bimodal_numeric_roughly() {
        let table = blob_table(600, 2);
        let vae = Vae::fit(&table, &quick_config());
        let mut rng = Rng::seed_from_u64(3);
        let syn = vae.generate(600, &mut rng);
        let vals = syn.column(0).as_num();
        // Both modes (±4) should be represented.
        let low = vals.iter().filter(|&&v| v < -1.0).count();
        let high = vals.iter().filter(|&&v| v > 1.0).count();
        assert!(
            low > 60 && high > 60,
            "modes not covered: low {low}, high {high}"
        );
    }

    #[test]
    fn label_marginal_roughly_preserved() {
        let table = blob_table(600, 4);
        let vae = Vae::fit(&table, &quick_config());
        let mut rng = Rng::seed_from_u64(5);
        let syn = vae.generate(1000, &mut rng);
        let p1 = syn.labels().iter().filter(|&&y| y == 1).count() as f64 / 1000.0;
        assert!((p1 - 0.4).abs() < 0.2, "p1 = {p1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let table = blob_table(200, 6);
        let cfg = VaeConfig {
            iterations: 100,
            ..quick_config()
        };
        let a = Vae::fit(&table, &cfg).generate(20, &mut Rng::seed_from_u64(9));
        let b = Vae::fit(&table, &cfg).generate(20, &mut Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
