//! # daisy-baselines
//!
//! The comparison synthesizers of the paper's §6.3: a variational
//! autoencoder (VAE) sharing the GAN's reversible record
//! transformation, the state-of-the-art statistical method PrivBayes
//! with its ε-differential-privacy knob, and an independent-marginals
//! floor baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod independent;
pub mod privbayes;
pub mod vae;

pub use independent::IndependentMarginals;
pub use privbayes::{PrivBayes, PrivBayesConfig};
pub use vae::{Vae, VaeConfig};
