//! PrivBayes baseline (Zhang et al. [62, 63], as used in §6.3): a
//! differentially private Bayesian network.
//!
//! The pipeline follows the original construction at the fidelity the
//! paper uses it:
//! 1. numerical attributes are discretized into a fixed number of
//!    equi-width bins (the paper points this out as the reason PB's
//!    synthetic numerics rarely "hit" real records);
//! 2. half the privacy budget picks the network greedily by *noisy*
//!    mutual information (Laplace-perturbed scores);
//! 3. the other half perturbs the conditional distributions with
//!    Laplace noise, clamping negatives and renormalizing;
//! 4. synthesis is ancestral sampling, with numerical bins decoded
//!    uniformly at random within the bin.

use daisy_core::TableSynthesizer;
use daisy_data::{Column, Schema, Table};
use daisy_tensor::Rng;

/// PrivBayes configuration.
#[derive(Debug, Clone)]
pub struct PrivBayesConfig {
    /// Total privacy budget ε (split evenly between structure and
    /// distribution perturbation).
    pub epsilon: f64,
    /// Maximum number of parents per node (the network degree k).
    pub degree: usize,
    /// Equi-width bins per numerical attribute.
    pub bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PrivBayesConfig {
    /// The paper's `PB-ε` configurations: degree-1 network, 16 bins.
    pub fn with_epsilon(epsilon: f64) -> Self {
        PrivBayesConfig {
            epsilon,
            degree: 1,
            bins: 16,
            seed: 7,
        }
    }
}

#[derive(Debug, Clone)]
enum Discretizer {
    Cat { k: usize },
    Num { min: f64, width: f64, bins: usize },
}

impl Discretizer {
    fn domain(&self) -> usize {
        match self {
            Discretizer::Cat { k } => *k,
            Discretizer::Num { bins, .. } => *bins,
        }
    }

    fn encode(&self, col: &Column, row: usize) -> usize {
        match (self, col) {
            (Discretizer::Cat { .. }, Column::Cat { codes, .. }) => codes[row] as usize,
            (Discretizer::Num { min, width, bins }, Column::Num(v)) => {
                if *width <= 0.0 {
                    return 0;
                }
                (((v[row] - min) / width) as usize).min(bins - 1)
            }
            _ => unreachable!("discretizer/column mismatch"),
        }
    }

    fn decode(&self, code: usize, rng: &mut Rng) -> DiscreteValue {
        match self {
            Discretizer::Cat { .. } => DiscreteValue::Cat(code as u32),
            Discretizer::Num { min, width, .. } => {
                let lo = min + code as f64 * width;
                DiscreteValue::Num(if *width > 0.0 {
                    rng.uniform(lo, lo + width)
                } else {
                    *min
                })
            }
        }
    }
}

enum DiscreteValue {
    Cat(u32),
    Num(f64),
}

/// One node of the fitted network.
struct NodeModel {
    attr: usize,
    parents: Vec<usize>,
    /// Conditional probabilities, indexed by
    /// `parent_config * domain + value`.
    cpt: Vec<f64>,
    /// Strides for computing the parent configuration index.
    parent_domains: Vec<usize>,
}

/// A fitted PrivBayes synthesizer.
pub struct PrivBayes {
    schema: Schema,
    categories: Vec<Vec<String>>,
    discretizers: Vec<Discretizer>,
    nodes: Vec<NodeModel>,
    config: PrivBayesConfig,
}

impl PrivBayes {
    /// Fits the ε-differentially-private network on `table`.
    pub fn fit(table: &Table, config: &PrivBayesConfig) -> PrivBayes {
        assert!(table.n_rows() > 0, "cannot fit on an empty table");
        assert!(config.epsilon > 0.0, "epsilon must be positive");
        assert!(config.degree >= 1, "network degree must be at least 1");
        let mut rng = Rng::seed_from_u64(config.seed);
        let d = table.n_attrs();
        let n = table.n_rows();

        // Discretize.
        let discretizers: Vec<Discretizer> = table
            .columns()
            .iter()
            .map(|c| match c {
                Column::Cat { categories, .. } => Discretizer::Cat {
                    k: categories.len(),
                },
                Column::Num(v) => {
                    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    Discretizer::Num {
                        min,
                        width: (max - min) / config.bins as f64,
                        bins: config.bins,
                    }
                }
            })
            .collect();
        let codes: Vec<Vec<usize>> = (0..d)
            .map(|j| {
                let col = table.column(j);
                (0..n).map(|i| discretizers[j].encode(col, i)).collect()
            })
            .collect();

        // Structure: greedy noisy-MI selection, ε/2 split over the d-1
        // selection steps (MI sensitivity is O(log n / n); the Laplace
        // scale below follows the PrivBayes calibration shape).
        let eps_structure = config.epsilon / 2.0;
        let mi_scale = if d > 1 {
            2.0 * (d - 1) as f64 * (n as f64).ln() / (n as f64 * eps_structure)
        } else {
            0.0
        };
        let first = rng.usize(d);
        let mut order = vec![first];
        let mut parents_of: Vec<Vec<usize>> = vec![Vec::new()];
        let mut remaining: Vec<usize> = (0..d).filter(|&j| j != first).collect();
        while !remaining.is_empty() {
            let mut best: Option<(f64, usize, Vec<usize>)> = None;
            for &cand in &remaining {
                for pset in parent_sets(&order, config.degree) {
                    let score = mutual_information(&codes, cand, &pset, &discretizers)
                        + rng.laplace(mi_scale);
                    if best.as_ref().is_none_or(|(b, _, _)| score > *b) {
                        best = Some((score, cand, pset));
                    }
                }
            }
            let (_, cand, pset) = best.expect("non-empty candidate set");
            order.push(cand);
            parents_of.push(pset);
            remaining.retain(|&j| j != cand);
        }

        // Distributions: ε/2 split over d conditional tables; Laplace
        // noise with sensitivity 2 on each count.
        let eps_dist = config.epsilon / 2.0;
        let count_scale = 2.0 * d as f64 / eps_dist;
        let nodes = order
            .iter()
            .zip(&parents_of)
            .map(|(&attr, parents)| {
                let parent_domains: Vec<usize> =
                    parents.iter().map(|&p| discretizers[p].domain()).collect();
                let n_configs: usize = parent_domains.iter().product::<usize>().max(1);
                let k = discretizers[attr].domain();
                let mut counts = vec![0.0f64; n_configs * k];
                for i in 0..n {
                    let mut cfg = 0usize;
                    for (&p, &pd) in parents.iter().zip(&parent_domains) {
                        cfg = cfg * pd + codes[p][i];
                    }
                    counts[cfg * k + codes[attr][i]] += 1.0;
                }
                // Perturb, clamp, normalize per configuration.
                let mut cpt = vec![0.0f64; n_configs * k];
                for cfg in 0..n_configs {
                    let cells = &mut counts[cfg * k..(cfg + 1) * k];
                    let mut total = 0.0;
                    for c in cells.iter_mut() {
                        *c = (*c + rng.laplace(count_scale)).max(0.0);
                        total += *c;
                    }
                    let out = &mut cpt[cfg * k..(cfg + 1) * k];
                    if total > 0.0 {
                        for (o, &c) in out.iter_mut().zip(cells.iter()) {
                            *o = c / total;
                        }
                    } else {
                        out.fill(1.0 / k as f64);
                    }
                }
                NodeModel {
                    attr,
                    parents: parents.clone(),
                    cpt,
                    parent_domains,
                }
            })
            .collect();

        PrivBayes {
            schema: table.schema().clone(),
            categories: table
                .columns()
                .iter()
                .map(|c| match c {
                    Column::Cat { categories, .. } => categories.clone(),
                    Column::Num(_) => Vec::new(),
                })
                .collect(),
            discretizers,
            nodes,
            config: config.clone(),
        }
    }

    /// The attribute sampling order chosen by the structure phase.
    pub fn sampling_order(&self) -> Vec<usize> {
        self.nodes.iter().map(|m| m.attr).collect()
    }

    /// Parent attributes of each node, aligned with
    /// [`PrivBayes::sampling_order`].
    pub fn parents(&self) -> Vec<Vec<usize>> {
        self.nodes.iter().map(|m| m.parents.clone()).collect()
    }

    /// Generates `n` records by ancestral sampling.
    pub fn generate(&self, n: usize, rng: &mut Rng) -> Table {
        let d = self.schema.n_attrs();
        let mut discrete = vec![0usize; d];
        let mut num_cols: Vec<Vec<f64>> = vec![Vec::new(); d];
        let mut cat_cols: Vec<Vec<u32>> = vec![Vec::new(); d];
        for _ in 0..n {
            for node in &self.nodes {
                let k = self.discretizers[node.attr].domain();
                let mut cfg = 0usize;
                for (&p, &pd) in node.parents.iter().zip(&node.parent_domains) {
                    cfg = cfg * pd + discrete[p];
                }
                let probs = &node.cpt[cfg * k..(cfg + 1) * k];
                let code = rng.weighted(probs);
                discrete[node.attr] = code;
                match self.discretizers[node.attr].decode(code, rng) {
                    DiscreteValue::Cat(c) => cat_cols[node.attr].push(c),
                    DiscreteValue::Num(v) => num_cols[node.attr].push(v),
                }
            }
        }
        let columns: Vec<Column> = (0..d)
            .map(|j| match &self.discretizers[j] {
                Discretizer::Cat { .. } => Column::Cat {
                    codes: std::mem::take(&mut cat_cols[j]),
                    categories: self.categories[j].clone(),
                },
                Discretizer::Num { .. } => Column::Num(std::mem::take(&mut num_cols[j])),
            })
            .collect();
        Table::new(self.schema.clone(), columns)
    }
}

/// Candidate parent sets: all subsets of `chosen` with size 1..=degree
/// (plus the empty set when nothing is chosen yet — the root case is
/// handled by the caller seeding `order` with one node).
fn parent_sets(chosen: &[usize], degree: usize) -> Vec<Vec<usize>> {
    let mut sets: Vec<Vec<usize>> = chosen.iter().map(|&p| vec![p]).collect();
    if degree >= 2 {
        for i in 0..chosen.len() {
            for j in i + 1..chosen.len() {
                sets.push(vec![chosen[i], chosen[j]]);
            }
        }
    }
    sets
}

/// Mutual information (nats) between attribute `a` and the joint of
/// `parents`, over discretized codes.
fn mutual_information(
    codes: &[Vec<usize>],
    a: usize,
    parents: &[usize],
    discretizers: &[Discretizer],
) -> f64 {
    let n = codes[a].len();
    let ka = discretizers[a].domain();
    let kp: usize = parents.iter().map(|&p| discretizers[p].domain()).product();
    let mut joint = vec![0.0f64; ka * kp];
    let mut pa = vec![0.0f64; ka];
    let mut pp = vec![0.0f64; kp];
    for i in 0..n {
        let mut cfg = 0usize;
        for &p in parents {
            cfg = cfg * discretizers[p].domain() + codes[p][i];
        }
        joint[cfg * ka + codes[a][i]] += 1.0;
        pa[codes[a][i]] += 1.0;
        pp[cfg] += 1.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for cfg in 0..kp {
        for v in 0..ka {
            let pxy = joint[cfg * ka + v] / nf;
            if pxy > 0.0 {
                mi += pxy * (pxy / ((pa[v] / nf) * (pp[cfg] / nf))).ln();
            }
        }
    }
    mi
}

impl TableSynthesizer for PrivBayes {
    fn synthesize(&self, n: usize, rng: &mut Rng) -> Table {
        self.generate(n, rng)
    }

    fn method_name(&self) -> String {
        format!("PB-{}", self.config.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_data::{Attribute, Schema};

    /// Chain-correlated categorical table: a1 copies a0 w.p. 0.9; label
    /// copies a1 w.p. 0.9.
    fn chain_table(n: usize, seed: u64) -> Table {
        let mut rng = Rng::seed_from_u64(seed);
        let mut a0 = Vec::with_capacity(n);
        let mut a1 = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let v0 = rng.usize(2) as u32;
            let v1 = if rng.bool(0.9) { v0 } else { 1 - v0 };
            let vy = if rng.bool(0.9) { v1 } else { 1 - v1 };
            a0.push(v0);
            a1.push(v1);
            y.push(vy);
        }
        Table::new(
            Schema::with_label(
                vec![
                    Attribute::categorical("a0"),
                    Attribute::categorical("a1"),
                    Attribute::categorical("y"),
                ],
                2,
            ),
            vec![
                Column::cat_with_domain(a0, 2),
                Column::cat_with_domain(a1, 2),
                Column::cat_with_domain(y, 2),
            ],
        )
    }

    #[test]
    fn preserves_chain_dependence_at_loose_epsilon() {
        let table = chain_table(4000, 0);
        let pb = PrivBayes::fit(&table, &PrivBayesConfig::with_epsilon(10.0));
        let mut rng = Rng::seed_from_u64(1);
        let syn = pb.generate(4000, &mut rng);
        // a0↔a1 agreement should be far above 50%.
        let a0 = syn.column(0).as_cat();
        let a1 = syn.column(1).as_cat();
        let agree = a0.iter().zip(a1).filter(|(x, y)| x == y).count() as f64 / 4000.0;
        assert!(agree > 0.75, "agreement = {agree}");
    }

    #[test]
    fn tight_epsilon_destroys_structure() {
        let table = chain_table(2000, 2);
        let agree_at = |eps: f64| {
            let pb = PrivBayes::fit(
                &table,
                &PrivBayesConfig {
                    epsilon: eps,
                    seed: 11,
                    ..PrivBayesConfig::with_epsilon(eps)
                },
            );
            let mut rng = Rng::seed_from_u64(3);
            let syn = pb.generate(4000, &mut rng);
            let a0 = syn.column(0).as_cat();
            let a1 = syn.column(1).as_cat();
            a0.iter().zip(a1).filter(|(x, y)| x == y).count() as f64 / 4000.0
        };
        let loose = agree_at(10.0);
        let tight = agree_at(0.001);
        assert!(
            loose > tight + 0.1,
            "loose {loose} should beat tight {tight}"
        );
    }

    #[test]
    fn numeric_attributes_roundtrip_through_bins() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 2000;
        let table = Table::new(
            Schema::new(vec![Attribute::numerical("v")]),
            vec![Column::Num(
                (0..n).map(|_| rng.normal_ms(50.0, 10.0)).collect(),
            )],
        );
        let pb = PrivBayes::fit(&table, &PrivBayesConfig::with_epsilon(8.0));
        let syn = pb.generate(n, &mut rng);
        let vals = syn.column(0).as_num();
        let mean = vals.iter().sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 3.0, "mean = {mean}");
        // Values stay within the observed range (bin decoding).
        let (min, max) = table.column(0).as_num().iter().fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), &v| (lo.min(v), hi.max(v)),
        );
        assert!(vals.iter().all(|&v| v >= min - 1e-9 && v <= max + 1e-9));
    }

    #[test]
    fn degree_two_networks_fit() {
        let table = chain_table(1000, 5);
        let pb = PrivBayes::fit(
            &table,
            &PrivBayesConfig {
                degree: 2,
                ..PrivBayesConfig::with_epsilon(5.0)
            },
        );
        assert_eq!(pb.sampling_order().len(), 3);
        // The last node may have up to 2 parents.
        assert!(pb.parents().iter().all(|p| p.len() <= 2));
        let mut rng = Rng::seed_from_u64(6);
        assert_eq!(pb.generate(50, &mut rng).n_rows(), 50);
    }

    #[test]
    fn order_covers_all_attributes() {
        let table = chain_table(500, 7);
        let pb = PrivBayes::fit(&table, &PrivBayesConfig::with_epsilon(1.0));
        let mut order = pb.sampling_order();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
