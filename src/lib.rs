//! # Daisy-RS
//!
//! A pure-Rust reproduction of *"Relational Data Synthesis using
//! Generative Adversarial Networks: A Design Space Exploration"*
//! (Fan, Liu, Li, Chen, Shen, Du — PVLDB 13(11), 2020).
//!
//! The workspace implements the paper's unified GAN framework, the full
//! design space (MLP / LSTM / CNN networks, ordinal / one-hot and
//! simple / GMM transformations, VTrain / WTrain / CTrain / DPTrain),
//! the VAE and PrivBayes baselines, the evaluation stack
//! (classification, clustering, AQP, privacy risk), and every dataset
//! family of the study — on a from-scratch tensor/autodiff substrate.
//!
//! This crate re-exports the member crates under stable names:
//!
//! ```
//! use daisy::prelude::*;
//!
//! let table = daisy::datasets::SDataNum {
//!     correlation: 0.5,
//!     skew: daisy::datasets::Skew::Balanced,
//! }
//! .generate(600, 0);
//! let mut rng = Rng::seed_from_u64(1);
//! let (train, _valid, _test) = table.split_train_valid_test(&mut rng);
//! let mut tc = TrainConfig::vtrain(10);
//! tc.epochs = 2;
//! let mut config = SynthesizerConfig::new(NetworkKind::Mlp, tc);
//! config.g_hidden = vec![32];
//! config.d_hidden = vec![32];
//! let fitted = Synthesizer::fit(&train, &config);
//! let synthetic = fitted.generate(100, &mut rng);
//! assert_eq!(synthetic.n_rows(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use daisy_baselines as baselines;
pub use daisy_core as core;
pub use daisy_data as data;
pub use daisy_datasets as datasets;
pub use daisy_eval as eval;
pub use daisy_nn as nn;
pub use daisy_serve as serve;
pub use daisy_telemetry as telemetry;
pub use daisy_tensor as tensor;
pub use daisy_wire as wire;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use daisy_baselines::{IndependentMarginals, PrivBayes, PrivBayesConfig, Vae, VaeConfig};
    pub use daisy_core::{
        CheckpointError, CheckpointPlan, DiscriminatorKind, DpConfig, FaultPlan,
        FittedSynthesizer, GuardConfig, IoFaultPlan, LossKind, NetworkKind, Synthesizer,
        SynthesizerConfig, TableSynthesizer, TrainConfig, TrainError, TrainOutcome,
    };
    pub use daisy_data::{
        Attribute, Column, DataError, RecordCodec, Schema, Table, TransformConfig, Value,
    };
    pub use daisy_eval::{classifier_zoo, classification_utility, clustering_utility};
    pub use daisy_serve::{Request, ServeConfig, ServeError, Server};
    pub use daisy_tensor::{Rng, Tensor};
}
