//! `daisy top` — a refreshing terminal view of a serving process.
//!
//! Polls the read-only admin endpoint of a running `daisy serve`
//! (enabled with `DAISY_SERVE_ADMIN=HOST:PORT`) and renders request
//! and row throughput, interpolated latency percentiles, connection
//! occupancy, and the hottest profiled phases. With `--trace FILE` it
//! renders the same sections offline from a recorded `DAISY_TRACE`
//! file instead of polling anything.

use daisy::telemetry::{expose, metrics};

/// Phases shown in the hottest-phases table.
const TOP_PHASES: usize = 8;

/// One polled view of the admin plane, reduced to what the display
/// needs. Rates come from differencing two snapshots.
struct Snapshot {
    /// Milliseconds since `daisy top` started, at capture time.
    at_ms: f64,
    requests: f64,
    rows: f64,
    active_conns: f64,
    /// `(lower_bound_us, count)` pairs of the request latency histogram.
    latency_us: Vec<(u64, u64)>,
    /// `(path, calls, total_secs, self_secs)` sorted by self time.
    phases: Vec<(String, f64, f64, f64)>,
}

impl Snapshot {
    fn from_samples(samples: &[expose::Sample], at_ms: f64) -> Snapshot {
        let mut phases: Vec<(String, f64, f64, f64)> = Vec::new();
        for s in samples.iter().filter(|s| s.name == "daisy_phase_calls_total") {
            if let Some(path) = s.label("phase") {
                let total = labeled(samples, "daisy_phase_seconds_total", path);
                let own = labeled(samples, "daisy_phase_self_seconds_total", path);
                phases.push((path.to_string(), s.value, total, own));
            }
        }
        phases.sort_by(|a, b| b.3.total_cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
        Snapshot {
            at_ms,
            requests: expose::sample_value(samples, "daisy_serve_requests").unwrap_or(0.0),
            rows: expose::sample_value(samples, "daisy_serve_rows").unwrap_or(0.0),
            active_conns: expose::sample_value(samples, "daisy_serve_active_conns").unwrap_or(0.0),
            latency_us: expose::histogram_pairs(samples, "daisy_serve_request_us"),
            phases,
        }
    }
}

/// The value of `name{phase="path"}`, or 0 when absent.
fn labeled(samples: &[expose::Sample], name: &str, path: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && s.label("phase") == Some(path))
        .map(|s| s.value)
        .unwrap_or(0.0)
}

/// Entry point for `daisy top`.
pub fn top(mut args: Vec<String>) -> Result<(), String> {
    let trace = crate::take_flag(&mut args, "--trace")?;
    let interval_ms = match crate::take_flag(&mut args, "--interval")? {
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| format!("invalid --interval: {v:?}"))?;
            if secs <= 0.0 || secs.is_nan() {
                return Err("--interval must be positive".into());
            }
            (secs * 1000.0) as u64
        }
        None => 2000,
    };
    let once = if let Some(pos) = args.iter().position(|a| a == "--once") {
        args.remove(pos);
        true
    } else {
        false
    };

    if let Some(path) = trace {
        return top_trace(&path);
    }

    let addr = args
        .first()
        .ok_or("top requires an admin address (or --trace FILE)")?
        .clone();
    let watch = daisy::telemetry::Stopwatch::start();
    let mut prev: Option<Snapshot> = None;
    loop {
        let health = daisy::serve::fetch_admin(&addr, "/healthz")
            .map_err(|e| format!("cannot reach admin endpoint {addr}: {e}"))?;
        let text = daisy::serve::fetch_admin(&addr, "/metrics")
            .map_err(|e| format!("cannot reach admin endpoint {addr}: {e}"))?;
        let samples =
            expose::parse(&text).map_err(|e| format!("bad /metrics exposition: {e}"))?;
        let snap = Snapshot::from_samples(&samples, watch.elapsed_ms());
        if !once {
            // Clear and home, so each frame overwrites the last.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_frame(&addr, &health, &snap, prev.as_ref()));
        if once {
            return Ok(());
        }
        prev = Some(snap);
        daisy::telemetry::sleep_ms(interval_ms);
    }
}

/// Offline mode: render the serving + profile sections of a recorded
/// trace, tolerating a torn final line the same way `daisy report`
/// does.
fn top_trace(path: &str) -> Result<(), String> {
    let jsonl =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (intact, torn) = daisy::telemetry::trace::split_torn_tail(&jsonl);
    if let Some(line) = torn {
        eprintln!(
            "warning: {path}: ignoring torn final line ({} bytes) — the recorder was \
             likely interrupted mid-write",
            line.len()
        );
    }
    let report = daisy::telemetry::RunReport::from_jsonl(intact)
        .map_err(|e| format!("invalid trace {path}: {e}"))?;
    print!("{}", report.render_top());
    Ok(())
}

fn render_frame(
    addr: &str,
    health: &str,
    snap: &Snapshot,
    prev: Option<&Snapshot>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("daisy top — {addr}\n"));
    for line in health.lines() {
        // Surface the identity lines verbatim; counters are shown as
        // rates below.
        if line.starts_with("fingerprint") || line.starts_with("model") || line.starts_with("uptime_ms")
        {
            out.push_str(&format!("  {line}\n"));
        }
    }
    match prev {
        Some(p) if snap.at_ms > p.at_ms => {
            let dt = (snap.at_ms - p.at_ms) / 1000.0;
            out.push_str(&format!(
                "  requests/sec {:>10.1}    rows/sec {:>12.0}\n",
                (snap.requests - p.requests) / dt,
                (snap.rows - p.rows) / dt,
            ));
        }
        _ => out.push_str("  requests/sec        n/a    rows/sec          n/a  (first sample)\n"),
    }
    out.push_str(&format!(
        "  requests {:>14.0}    rows {:>16.0}    active conns {:.0}\n",
        snap.requests, snap.rows, snap.active_conns
    ));
    let p50 = metrics::bucket_percentile(&snap.latency_us, 50.0);
    let p99 = metrics::bucket_percentile(&snap.latency_us, 99.0);
    if let (Some(p50), Some(p99)) = (p50, p99) {
        out.push_str(&format!(
            "  latency p50≈{:.1}ms p99≈{:.1}ms (pow2-bucket interpolation estimate)\n",
            p50 / 1000.0,
            p99 / 1000.0
        ));
    }
    if snap.phases.is_empty() {
        out.push_str("  no phase profile (start the server with DAISY_PROFILE=1)\n");
    } else {
        out.push_str("  hottest phases (self time):\n");
        for (path, calls, total, own) in snap.phases.iter().take(TOP_PHASES) {
            out.push_str(&format!(
                "    {path:<35} calls {calls:>9.0}  total {total:>8.3}s  self {own:>8.3}s\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, phase: Option<&str>, value: f64) -> expose::Sample {
        expose::Sample {
            name: name.to_string(),
            labels: phase
                .map(|p| vec![("phase".to_string(), p.to_string())])
                .unwrap_or_default(),
            value,
        }
    }

    #[test]
    fn snapshot_reduces_samples_and_ranks_phases() {
        let samples = vec![
            sample("daisy_serve_requests", None, 10.0),
            sample("daisy_serve_rows", None, 5000.0),
            sample("daisy_serve_active_conns", None, 2.0),
            sample("daisy_phase_calls_total", Some("fit"), 1.0),
            sample("daisy_phase_seconds_total", Some("fit"), 3.0),
            sample("daisy_phase_self_seconds_total", Some("fit"), 0.5),
            sample("daisy_phase_calls_total", Some("fit/epoch"), 4.0),
            sample("daisy_phase_seconds_total", Some("fit/epoch"), 2.5),
            sample("daisy_phase_self_seconds_total", Some("fit/epoch"), 2.0),
        ];
        let snap = Snapshot::from_samples(&samples, 100.0);
        assert_eq!(snap.requests, 10.0);
        assert_eq!(snap.rows, 5000.0);
        assert_eq!(snap.active_conns, 2.0);
        // Ranked by self time: the epoch body beats the fit shell.
        assert_eq!(snap.phases[0].0, "fit/epoch");
        assert_eq!(snap.phases[1].0, "fit");
    }

    #[test]
    fn frame_shows_rates_from_two_snapshots() {
        let old = Snapshot {
            at_ms: 0.0,
            requests: 10.0,
            rows: 1000.0,
            active_conns: 1.0,
            latency_us: vec![],
            phases: vec![],
        };
        let new = Snapshot {
            at_ms: 2000.0,
            requests: 30.0,
            rows: 9000.0,
            active_conns: 1.0,
            latency_us: vec![(4096, 4)],
            phases: vec![("serve_request".into(), 30.0, 1.2, 1.0)],
        };
        let frame = render_frame("127.0.0.1:1", "ok\nfingerprint 0xab\n", &new, Some(&old));
        assert!(frame.contains("requests/sec       10.0"), "{frame}");
        assert!(frame.contains("rows/sec         4000"), "{frame}");
        assert!(frame.contains("fingerprint 0xab"), "{frame}");
        assert!(frame.contains("latency p50≈6.1ms"), "{frame}");
        assert!(frame.contains("serve_request"), "{frame}");
        let first = render_frame("127.0.0.1:1", "ok\n", &new, None);
        assert!(first.contains("first sample"), "{first}");
    }

    #[test]
    fn frame_hints_when_profiling_is_off() {
        let snap = Snapshot {
            at_ms: 0.0,
            requests: 0.0,
            rows: 0.0,
            active_conns: 0.0,
            latency_us: vec![],
            phases: vec![],
        };
        let frame = render_frame("a", "", &snap, None);
        assert!(frame.contains("DAISY_PROFILE=1"), "{frame}");
    }
}
