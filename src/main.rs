//! `daisy` — command-line relational data synthesis.
//!
//! ```text
//! daisy demo --out real.csv                         # write a demo table
//! daisy synth real.csv --label income --out fake.csv
//! daisy evaluate real.csv fake.csv --label income   # utility + privacy
//! daisy lint --json                                 # workspace static analysis
//! ```
//!
//! Argument parsing is deliberately hand-rolled (no CLI dependency);
//! see `daisy --help`.

use daisy::prelude::*;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

mod top;

const HELP: &str = "\
daisy — GAN-based relational data synthesis (Fan et al., PVLDB 2020, in Rust)

USAGE:
    daisy demo --out <FILE> [--rows N] [--dataset NAME]
    daisy synth <REAL.csv> --out <FILE> [OPTIONS]
    daisy generate <MODEL.daisy> --out <FILE> --rows N [--seed N]
    daisy evaluate <REAL.csv> <SYNTH.csv> [--label COL]
    daisy describe <TABLE.csv> [--label COL]
    daisy ingest <INPUT.csv> --out <DIR> [OPTIONS]
    daisy serve <MODEL.daisy> [--addr HOST:PORT] [--stdio] [--shed]
                [--timeout-ms N] [--drain-ms N]
    daisy rows <ADDR> --rows N [--seed N] [--condition CAT] [--out FILE]
                [--retries N] [--start-row N] [--resume]
    daisy reload <ADMIN_ADDR>
    daisy top <ADMIN_ADDR> [--interval SECS] [--once]
    daisy top --trace <TRACE.jsonl>
    daisy report <TRACE.jsonl> [--validate]
    daisy lint [--format human|json|sarif] [--root DIR] [--list-rules]
    daisy knobs

SYNTH OPTIONS:
    --label COL          label column name (enables conditional training)
    --rows N             synthetic rows to emit (default: input size)
    --network KIND       mlp | lstm | cnn          (default: mlp)
    --train ALGO         vtrain | wtrain | ctrain  (default: vtrain,
                         ctrain when --label is given and skew > 9)
    --transform SCHEME   sn/od | sn/ht | gn/od | gn/ht (default: gn/ht)
    --iterations N       generator iterations (default: 1500)
    --epsilon E          train with DPTrain at privacy budget E
    --seed N             RNG seed (default: 7)
    --save FILE          also save the fitted model (reuse with `generate`)

DEMO OPTIONS:
    --dataset NAME       HTRU2|Digits|Adult|CovType|SAT|Anuran|Census|Bing
                         (default: Adult)
    --rows N             rows to generate (default: 3000)

INGEST OPTIONS:
    --out DIR            store directory to create/resume (required)
    --label COL          label column name (stored in the manifest)
    --chunk-rows N       accepted rows per sealed chunk (default: 4096)
    --skip-budget N      skip up to N bad rows into DIR/rejected.txt
                         (default: strict — first bad row is a hard error)
    Ingestion is crash-safe: rerunning the same command after an
    interruption resumes from the journal and produces a byte-identical
    store. Corrupt chunks found on resume are set aside as *.corrupt-N.
    DAISY_MEM_BUDGET caps the decoded-chunk cache when training from
    the store (bytes, default 256 MiB).

SERVE OPTIONS:
    --addr HOST:PORT     listen address (default 127.0.0.1:7764; port 0
                         picks an ephemeral port, printed at startup)
    --stdio              serve exactly one connection over stdin/stdout
                         instead of TCP (for pipelines; one process per
                         client)
    --timeout-ms N       per-connection read/write deadline (default
                         30000; 0 disables) — stalled peers are evicted
                         and their slots freed
    --drain-ms N         graceful-drain window on SIGTERM (default
                         5000): stop accepting, let in-flight streams
                         finish, seal stragglers with a typed draining
                         end frame, exit 143
    --shed               when all slots are busy, reject new clients
                         with a typed \"overloaded\" header instead of
                         queueing them in the TCP backlog
    The server streams rows with bounded memory and answers any request
    {seed, rows, start_row, condition?} with byte-identical output on
    replay. DAISY_SERVE_MAX_CONN caps concurrent connections (default
    4); DAISY_SERVE_MAX_ROWS caps rows per request (default 100000000);
    DAISY_SERVE_TIMEOUT_MS / DAISY_SERVE_DRAIN_MS / DAISY_SERVE_SHED=1
    are the environment forms of the flags above. With
    DAISY_SERVE_ADMIN=HOST:PORT set, `daisy reload <ADMIN_ADDR>`
    hot-swaps the (revalidated) model file without dropping streams.
    See docs/SERVING.md for the protocol and runbook.

TOP OPTIONS (live viewer for a running `daisy serve`):
    <ADMIN_ADDR>         the server's admin address — start the server
                         with DAISY_SERVE_ADMIN=HOST:PORT to enable it
    --interval SECS      seconds between refreshes (default: 2)
    --once               print one frame and exit (for scripts)
    --trace FILE         render a recorded DAISY_TRACE file offline
                         instead of polling a server
    Shows requests/sec, rows/sec, interpolated p50/p99 request latency,
    connection occupancy, and the hottest profiled phases (run the
    server with DAISY_PROFILE=1 to populate the phase table).

ROWS OPTIONS (scripted client for a running `daisy serve`):
    --rows N             rows to request (required)
    --seed N             request seed (default: 7); same seed, same rows
    --condition CAT      condition every row on this label category
    --out FILE           write CSV there instead of stdout (streamed
                         and flushed batch by batch)
    --retries N          retry transient failures (torn streams,
                         resets, \"overloaded\", \"draining\") up to N
                         times with deterministic backoff, resuming at
                         the last validated row (default: 5; 0 fails
                         on the first interruption)
    --start-row N        resume the logical stream at row N (the rows
                         before N are skipped server-side; output is
                         byte-identical to the tail of a full fetch)
    --resume             with --out: count the complete rows already in
                         the file, truncate any torn final line, and
                         continue from there

RELOAD (hot model swap on a running `daisy serve`):
    daisy reload <ADMIN_ADDR> revalidates the server's model file and
    atomically swaps it in: in-flight streams finish on the old model,
    new connections use the new one. A corrupt replacement is
    quarantined (*.corrupt-N) and the old model keeps serving.

REPORT OPTIONS:
    --validate           only validate the trace; print the summary line

LINT:
    Statically checks the workspace's own sources against the
    determinism/schema/hygiene/registry rule catalogue (docs/LINTS.md).
    Exit 0 when clean, 1 on findings, 2 on usage or I/O errors.
    --format sarif emits SARIF 2.1.0 for CI code-scanning upload.

KNOBS:
    Prints the registry of every DAISY_* environment variable the
    workspace reads — one per line, tab-separated:
    name, default, owner, description. The same registry the code
    reads through (telemetry::knobs) and the lint checks against.

OBSERVABILITY:
    Set DAISY_TRACE=<path> to record a JSONL event trace of any command
    (training epochs, guard trips, recoveries, model selection); render
    it afterwards with `daisy report`. See docs/OBSERVABILITY.md.
";

fn main() -> ExitCode {
    // Open the DAISY_TRACE sink (if configured) up front so a bad path
    // warns before any work starts; arm the phase profiler when
    // DAISY_PROFILE is set.
    daisy::telemetry::init_from_env();
    daisy::telemetry::profile::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `lint` owns its own exit-code contract (0 clean, 1 findings,
    // 2 usage/IO) and must not print the synthesis HELP on findings,
    // so it bypasses the Result-based dispatch below.
    if args.first().map(String::as_str) == Some("lint") {
        return ExitCode::from(daisy_lint::cli::cli(&args[1..]) as u8);
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{HELP}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` out of the argument list, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("invalid {what}: {s:?}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!("{HELP}");
        return Ok(());
    }
    let command = args.remove(0);
    match command.as_str() {
        "demo" => demo(args),
        "synth" => synth(args),
        "evaluate" => evaluate(args),
        "describe" => describe(args),
        "generate" => generate(args),
        "ingest" => ingest(args),
        "serve" => serve(args),
        "rows" => rows(args),
        "reload" => reload(args),
        "top" => top::top(args),
        "report" => report(args),
        "knobs" => {
            print!("{}", daisy::telemetry::knobs::render());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_csv(path: &str, label: Option<&str>) -> Result<Table, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    daisy::data::csv::read_csv(BufReader::new(file), label)
        .map_err(|e| format!("cannot parse {path}: {e}"))
}

fn save_csv(table: &Table, path: &str) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    daisy::data::csv::write_csv(table, BufWriter::new(file))
        .map_err(|e| format!("cannot write {path}: {e}"))
}

fn describe(mut args: Vec<String>) -> Result<(), String> {
    let label = take_flag(&mut args, "--label")?;
    let path = args.first().ok_or("describe requires a CSV path")?;
    let table = load_csv(path, label.as_deref())?;
    println!(
        "{path}: {} rows, {} numerical + {} categorical attributes",
        table.n_rows(),
        table.schema().n_numerical(),
        table.schema().n_categorical()
    );
    for (j, attr) in table.schema().attrs().iter().enumerate() {
        match &table.columns()[j] {
            daisy::data::Column::Num(v) => {
                let s = daisy::eval::quantile_summary(v);
                println!(
                    "  {:<24} numeric   min {:.3}  median {:.3}  max {:.3}  mean {:.3}",
                    attr.name, s.min, s.median, s.max, s.mean
                );
            }
            daisy::data::Column::Cat { categories, codes } => {
                let mut counts = vec![0usize; categories.len()];
                for &c in codes {
                    counts[c as usize] += 1;
                }
                let top = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &n)| n)
                    .map(|(i, &n)| format!("{} ({:.1}%)", categories[i], 100.0 * n as f64 / codes.len().max(1) as f64))
                    .unwrap_or_default();
                println!(
                    "  {:<24} categorical  |domain| {}  top {}",
                    attr.name,
                    categories.len(),
                    top
                );
            }
        }
    }
    if table.schema().label().is_some() {
        println!(
            "  label skewness (max/min class ratio): {:.2}{}",
            table.label_skewness(),
            if table.label_skewness() > 9.0 {
                "  -> skew (paper criterion)"
            } else {
                "  -> balanced"
            }
        );
    }
    Ok(())
}

/// Streams a CSV into a crash-safe chunked columnar store. Rerunning
/// after an interruption resumes from the append-only journal; the
/// finished store is byte-identical to an uninterrupted run.
fn ingest(mut args: Vec<String>) -> Result<(), String> {
    let out = take_flag(&mut args, "--out")?.ok_or("ingest requires --out")?;
    let label = take_flag(&mut args, "--label")?;
    let chunk_rows = match take_flag(&mut args, "--chunk-rows")? {
        Some(v) => parse_usize(&v, "--chunk-rows")?,
        None => 4096,
    };
    if chunk_rows == 0 {
        return Err("--chunk-rows must be positive".into());
    }
    let policy = match take_flag(&mut args, "--skip-budget")? {
        Some(v) => daisy::data::RowErrorPolicy::SkipWithBudget {
            budget: parse_usize(&v, "--skip-budget")?,
        },
        None => daisy::data::RowErrorPolicy::Strict,
    };
    let input = args.first().ok_or("ingest requires an input CSV path")?;
    let cfg = daisy::data::IngestConfig {
        chunk_rows,
        label,
        policy,
        ..Default::default()
    };
    let report = daisy::data::ingest_csv(
        std::path::Path::new(input),
        std::path::Path::new(&out),
        &cfg,
    )
    .map_err(|e| format!("ingest failed: {e}"))?;
    if report.already_complete {
        println!(
            "{out}: already complete — {} rows in {} chunks (journal verified)",
            report.rows, report.chunks
        );
        return Ok(());
    }
    if let Some(k) = report.resumed_from_chunk {
        println!("resumed from chunk {k} (journal replay)");
    }
    println!(
        "ingested {} rows into {} chunks at {out} ({} rejected)",
        report.rows, report.chunks, report.rejected
    );
    if report.rejected > 0 {
        println!("rejected rows are quarantined with line numbers in {out}/rejected.txt");
    }
    Ok(())
}

/// Validates a `DAISY_TRACE` JSONL file and renders the run report
/// (loss curve, recovery timeline, model selection, metrics). With
/// `--validate` it stops after validation, so CI can use it as a trace
/// linter: any malformed line is a nonzero exit.
fn report(mut args: Vec<String>) -> Result<(), String> {
    let validate_only = if let Some(pos) = args.iter().position(|a| a == "--validate") {
        args.remove(pos);
        true
    } else {
        false
    };
    let path = args.first().ok_or("report requires a trace path")?;
    let jsonl = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    // A crashed or killed recorder can leave a half-written final
    // line; that must not make the rest of the run unreadable. Only
    // the last line is forgiven — garbage anywhere else still fails.
    let (intact, torn) = daisy::telemetry::trace::split_torn_tail(&jsonl);
    if let Some(line) = torn {
        eprintln!(
            "warning: {path}: ignoring torn final line ({} bytes) — the recorder was \
             likely interrupted mid-write",
            line.len()
        );
    }
    let report = daisy::telemetry::RunReport::from_jsonl(intact)
        .map_err(|e| format!("invalid trace {path}: {e}"))?;
    if validate_only {
        let stats = report.stats();
        println!(
            "{path}: valid — {} events ({} non-deterministic), {} event types",
            stats.events,
            stats.nd_events,
            stats.names.len()
        );
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

/// Runs the streaming generation service over a sealed model file.
/// TCP by default; `--stdio` serves one connection over stdin/stdout.
fn serve(mut args: Vec<String>) -> Result<(), String> {
    let addr = take_flag(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7764".into());
    let stdio = if let Some(pos) = args.iter().position(|a| a == "--stdio") {
        args.remove(pos);
        true
    } else {
        false
    };
    let mut cfg = ServeConfig::from_env();
    if let Some(v) = take_flag(&mut args, "--timeout-ms")? {
        cfg.timeout_ms = parse_usize(&v, "--timeout-ms")? as u64;
    }
    if let Some(v) = take_flag(&mut args, "--drain-ms")? {
        cfg.drain_ms = parse_usize(&v, "--drain-ms")? as u64;
    }
    if let Some(pos) = args.iter().position(|a| a == "--shed") {
        args.remove(pos);
        cfg.shed = true;
    }
    let model_path = args.first().ok_or("serve requires a model path")?;
    if stdio {
        let rows = daisy::serve::serve_stdio(model_path, &cfg).map_err(|e| e.to_string())?;
        eprintln!("served {rows} rows over stdio");
        return Ok(());
    }
    let server =
        Server::bind(model_path, addr.as_str(), cfg.clone()).map_err(|e| e.to_string())?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "serving {model_path} on {local} (max {} connections, {} rows/request)",
        cfg.max_conn, cfg.max_rows
    );
    if let Some(admin) = server.admin_addr() {
        println!("admin endpoint on {admin} (healthz, metrics, profile — `daisy top {admin}`)");
    }
    daisy::serve::shutdown::install_sigterm_handler();
    server.run().map_err(|e| e.to_string())?;
    // `run` only returns Ok after a graceful drain (SIGTERM). Exit with
    // the conventional SIGTERM code so supervisors and the CI smoke see
    // the termination they asked for, not a clean 0.
    eprintln!("drained; exiting");
    std::process::exit(143);
}

/// Renders one CSV cell against the stream's column contract:
/// numerical cells as their shortest roundtrip form, categorical cells
/// as their category name.
fn render_stream_cell(columns: &[daisy::serve::ColumnSpec], col: usize, value: &daisy::data::Value) -> String {
    use daisy::data::Value;
    use daisy::serve::ColumnSpec;
    match (value, &columns[col]) {
        (Value::Num(x), _) => format!("{x}"),
        (Value::Cat(code), ColumnSpec::Cat { categories, .. }) => categories
            .get(*code as usize)
            .cloned()
            .unwrap_or_else(|| format!("<code {code}>")),
        (Value::Cat(code), ColumnSpec::Num { .. }) => format!("<code {code}>"),
    }
}

/// Scripted client: streams one reproducible row stream from a running
/// `daisy serve` into CSV, batch by batch, surviving interruptions —
/// transient failures are retried with deterministic backoff and the
/// stream resumes at the last validated row, so the finished file is
/// byte-identical to an uninterrupted fetch.
fn rows(mut args: Vec<String>) -> Result<(), String> {
    use std::io::Write;

    let n = take_flag(&mut args, "--rows")?.ok_or("rows requires --rows")?;
    let n = parse_usize(&n, "--rows")? as u64;
    let seed = match take_flag(&mut args, "--seed")? {
        Some(v) => parse_usize(&v, "--seed")? as u64,
        None => 7,
    };
    let condition = take_flag(&mut args, "--condition")?;
    let out = take_flag(&mut args, "--out")?;
    let retries = match take_flag(&mut args, "--retries")? {
        Some(v) => parse_usize(&v, "--retries")? as u32,
        None => 5,
    };
    let mut start_row = match take_flag(&mut args, "--start-row")? {
        Some(v) => parse_usize(&v, "--start-row")? as u64,
        None => 0,
    };
    let resume = if let Some(pos) = args.iter().position(|a| a == "--resume") {
        args.remove(pos);
        true
    } else {
        false
    };
    let addr = args.first().ok_or("rows requires a server address")?.clone();

    // --resume: whatever complete CSV rows already sit in --out are
    // kept; a torn final line (a mid-write kill) is truncated away and
    // the stream picks up at the first missing row.
    let mut header_done = false;
    if resume {
        let path = out.as_deref().ok_or("--resume requires --out")?;
        if let Ok(existing) = std::fs::read_to_string(path) {
            let keep = existing.rfind('\n').map(|i| i + 1).unwrap_or(0);
            let complete_lines = existing[..keep].lines().count();
            if complete_lines > 0 {
                header_done = true;
                start_row = (complete_lines - 1) as u64;
            }
            if keep < existing.len() {
                eprintln!(
                    "truncating torn final line ({} bytes) before resuming",
                    existing.len() - keep
                );
            }
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| format!("cannot reopen {path}: {e}"))?;
            file.set_len(keep as u64)
                .map_err(|e| format!("cannot truncate {path}: {e}"))?;
            eprintln!("resuming at row {start_row} ({complete_lines} complete lines kept)");
        }
    }

    let mut request = match &condition {
        Some(c) => Request::conditioned(seed, n, c),
        None => Request::new(seed, n),
    };
    if start_row > 0 {
        request = request.resuming_at(start_row);
    }
    let policy = daisy::serve::RetryPolicy {
        max_attempts: retries + 1,
        ..daisy::serve::RetryPolicy::default()
    };

    let mut writer: Box<dyn Write> = match &out {
        Some(path) => {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .create(true)
                .append(resume)
                .truncate(!resume)
                .open(path)
                .map_err(|e| format!("cannot create {path}: {e}"))?;
            Box::new(std::io::BufWriter::new(file))
        }
        None => Box::new(std::io::stdout()),
    };
    let mut written = 0u64;
    let mut io_err: Option<String> = None;
    let attempts = daisy::serve::fetch_with_retry(addr.as_str(), &request, &policy, |p| {
        if io_err.is_some() {
            return;
        }
        let mut chunk = String::new();
        if !header_done {
            let names: Vec<&str> = p.columns.iter().map(|c| c.name()).collect();
            chunk.push_str(&names.join(","));
            chunk.push('\n');
            header_done = true;
        }
        for row in p.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(j, v)| render_stream_cell(p.columns, j, v))
                .collect();
            chunk.push_str(&cells.join(","));
            chunk.push('\n');
        }
        written += p.rows.len() as u64;
        // Write and flush per validated batch so a killed client
        // leaves at most one torn line for --resume to truncate.
        if let Err(e) = writer.write_all(chunk.as_bytes()).and_then(|()| writer.flush()) {
            io_err = Some(format!("write failed: {e}"));
        }
    })
    .map_err(|e| e.to_string())?;
    if let Some(e) = io_err {
        return Err(e);
    }
    writer.flush().map_err(|e| format!("flush failed: {e}"))?;
    if let Some(path) = &out {
        eprintln!(
            "wrote rows {start_row}..{n} from {addr} to {path} ({attempts} attempt{})",
            if attempts == 1 { "" } else { "s" }
        );
    }
    let _ = written;
    Ok(())
}

/// Triggers a hot model reload on a running `daisy serve` through its
/// admin endpoint (`POST /reload`).
fn reload(args: Vec<String>) -> Result<(), String> {
    let addr = args
        .first()
        .ok_or("reload requires the server's admin address (DAISY_SERVE_ADMIN)")?;
    let body = daisy::serve::post_admin(addr.as_str(), "/reload").map_err(|e| e.to_string())?;
    print!("{body}");
    Ok(())
}

fn demo(mut args: Vec<String>) -> Result<(), String> {
    let out = take_flag(&mut args, "--out")?.ok_or("demo requires --out")?;
    let rows = match take_flag(&mut args, "--rows")? {
        Some(v) => parse_usize(&v, "--rows")?,
        None => 3000,
    };
    let name = take_flag(&mut args, "--dataset")?.unwrap_or_else(|| "Adult".into());
    let spec = daisy::datasets::by_name(&name)
        .ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let table = spec.generate(rows, 42);
    save_csv(&table, &out)?;
    println!(
        "wrote {rows} rows of the {} stand-in to {out} ({} numerical, {} categorical attrs)",
        spec.name,
        table.schema().n_numerical(),
        table.schema().n_categorical()
    );
    Ok(())
}

fn synth(mut args: Vec<String>) -> Result<(), String> {
    let out = take_flag(&mut args, "--out")?.ok_or("synth requires --out")?;
    let label = take_flag(&mut args, "--label")?;
    let rows = take_flag(&mut args, "--rows")?;
    let network = take_flag(&mut args, "--network")?.unwrap_or_else(|| "mlp".into());
    let train_algo = take_flag(&mut args, "--train")?;
    let transform = take_flag(&mut args, "--transform")?.unwrap_or_else(|| "gn/ht".into());
    let iterations = match take_flag(&mut args, "--iterations")? {
        Some(v) => parse_usize(&v, "--iterations")?,
        None => 1500,
    };
    let epsilon = take_flag(&mut args, "--epsilon")?;
    let save_path = take_flag(&mut args, "--save")?;
    let seed = match take_flag(&mut args, "--seed")? {
        Some(v) => parse_usize(&v, "--seed")? as u64,
        None => 7,
    };
    let input = args
        .first()
        .ok_or("synth requires an input CSV path")?
        .clone();

    let table = load_csv(&input, label.as_deref())?;
    let n_out = match rows {
        Some(v) => parse_usize(&v, "--rows")?,
        None => table.n_rows(),
    };
    println!(
        "loaded {}: {} rows, {} attributes{}",
        input,
        table.n_rows(),
        table.n_attrs(),
        label
            .as_deref()
            .map(|l| format!(", label {l:?}"))
            .unwrap_or_default()
    );

    let network = match network.to_lowercase().as_str() {
        "mlp" => NetworkKind::Mlp,
        "lstm" => NetworkKind::Lstm,
        "cnn" => NetworkKind::Cnn,
        other => return Err(format!("unknown network {other:?}")),
    };
    let mut tc = match train_algo.as_deref() {
        Some("vtrain") => TrainConfig::vtrain(iterations),
        Some("wtrain") => TrainConfig::wtrain(iterations),
        Some("ctrain") => TrainConfig::ctrain(iterations),
        Some(other) => return Err(format!("unknown training algorithm {other:?}")),
        None => {
            // Paper guidance: conditional GAN for skewed labels.
            if table.schema().label().is_some() && table.label_skewness() > 9.0 {
                println!("label skewness > 9: using CTrain (conditional GAN)");
                TrainConfig::ctrain(iterations)
            } else {
                TrainConfig::vtrain(iterations)
            }
        }
    };
    if let Some(eps) = epsilon {
        let eps: f64 = eps
            .parse()
            .map_err(|_| format!("invalid --epsilon {eps:?}"))?;
        let dp = DpConfig::for_epsilon(
            eps,
            iterations * 3,
            tc.batch_size,
            table.n_rows(),
        );
        tc = TrainConfig::dptrain(iterations, dp);
        println!("DPTrain enabled at epsilon = {eps}");
    }
    let mut config = SynthesizerConfig::new(network, tc);
    config.transform = match transform.as_str() {
        "sn/od" => TransformConfig::sn_od(),
        "sn/ht" => TransformConfig::sn_ht(),
        "gn/od" => TransformConfig::gn_od(),
        "gn/ht" => TransformConfig::gn_ht(),
        other => return Err(format!("unknown transform {other:?}")),
    };
    config.seed = seed;

    println!(
        "training {} / {} / {} for {} iterations...",
        config.network.name(),
        config.transform.short_name(),
        config.train.name(),
        config.train.iterations
    );
    let fitted = Synthesizer::try_fit(&table, &config)
        .map_err(|e| format!("training failed: {e}"))?;
    let outcome = fitted.outcome();
    if !outcome.is_clean() {
        println!("training hit instability but recovered: {}", outcome.summary());
    }
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e37);
    let synthetic = fitted.generate(n_out, &mut rng);
    save_csv(&synthetic, &out)?;
    println!("wrote {n_out} synthetic rows to {out}");
    if let Some(path) = save_path {
        fitted.save(&path)?;
        println!("saved the fitted model to {path}");
    }
    Ok(())
}

fn generate(mut args: Vec<String>) -> Result<(), String> {
    let out = take_flag(&mut args, "--out")?.ok_or("generate requires --out")?;
    let rows = take_flag(&mut args, "--rows")?.ok_or("generate requires --rows")?;
    let rows = parse_usize(&rows, "--rows")?;
    let seed = match take_flag(&mut args, "--seed")? {
        Some(v) => parse_usize(&v, "--seed")? as u64,
        None => 7,
    };
    let model_path = args.first().ok_or("generate requires a model path")?;
    let fitted = FittedSynthesizer::load(model_path)?;
    let mut rng = Rng::seed_from_u64(seed);
    let synthetic = fitted.generate(rows, &mut rng);
    save_csv(&synthetic, &out)?;
    println!("generated {rows} rows from {model_path} into {out}");
    Ok(())
}

fn evaluate(mut args: Vec<String>) -> Result<(), String> {
    let label = take_flag(&mut args, "--label")?;
    if args.len() < 2 {
        return Err("evaluate requires <REAL.csv> <SYNTH.csv>".into());
    }
    let real = load_csv(&args[0], label.as_deref())?;
    let synthetic = load_csv(&args[1], label.as_deref())?;
    if real.schema() != synthetic.schema() {
        return Err("real and synthetic schemas differ (check --label and headers)".into());
    }
    let mut rng = Rng::seed_from_u64(1);

    println!("== distribution fidelity ==");
    for f in daisy::eval::attribute_fidelity(&real, &synthetic) {
        match f {
            daisy::eval::AttributeFidelity::Numerical {
                name, wasserstein, ..
            } => println!("  {name:<24} W1 = {wasserstein:.4}"),
            daisy::eval::AttributeFidelity::Categorical { name, tv } => {
                println!("  {name:<24} TV = {tv:.4}")
            }
        }
    }
    println!(
        "  pairwise correlation gap = {:.4}",
        daisy::eval::correlation_fidelity(&real, &synthetic)
    );
    if let Some(gap) = daisy::eval::fd_preservation_gap(&real, &synthetic, 0.8) {
        println!("  functional-dependency gap = {gap:.4}");
    }

    if real.schema().label().is_some() {
        println!("== classification utility (F1 Diff; lower is better) ==");
        // Hold out a third of the real data as the shared test set.
        let mut idx: Vec<usize> = (0..real.n_rows()).collect();
        rng.shuffle(&mut idx);
        let cut = real.n_rows() * 2 / 3;
        let train = real.select_rows(&idx[..cut]);
        let test = real.select_rows(&idx[cut..]);
        let binary = real.n_classes() == 2;
        for (name, make) in classifier_zoo() {
            let report = classification_utility(&train, &synthetic, &test, make, &mut rng);
            if binary {
                println!(
                    "  {name:<5} F1 real {:.3}  synthetic {:.3}  Diff {:.3}   AUC real {:.3}  synthetic {:.3}",
                    report.f1_real,
                    report.f1_synthetic,
                    report.f1_diff,
                    report.auc_real,
                    report.auc_synthetic
                );
            } else {
                println!(
                    "  {name:<5} F1 real {:.3}  synthetic {:.3}  Diff {:.3}",
                    report.f1_real, report.f1_synthetic, report.f1_diff
                );
            }
        }
        println!("== clustering utility ==");
        println!(
            "  DiffCST = {:.4}",
            clustering_utility(&real, &synthetic, &mut rng)
        );
    }

    println!("== privacy risk ==");
    let hr = daisy::eval::hitting_rate(&real, &synthetic, 2000, &mut rng);
    let d = daisy::eval::dcr(&real, &synthetic, 1000, &mut rng);
    println!("  hitting rate = {hr:.3}% (lower = better privacy)");
    println!("  DCR          = {d:.4} (higher = better privacy)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_flag_extracts_and_removes() {
        let mut args: Vec<String> = ["synth", "--out", "x.csv", "in.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(take_flag(&mut args, "--out").unwrap(), Some("x.csv".into()));
        assert_eq!(args, vec!["synth", "in.csv"]);
        assert_eq!(take_flag(&mut args, "--missing").unwrap(), None);
    }

    #[test]
    fn take_flag_requires_value() {
        let mut args: Vec<String> = vec!["--out".into()];
        assert!(take_flag(&mut args, "--out").is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn help_is_ok() {
        assert!(run(&["--help".into()]).is_ok());
    }

    #[test]
    fn knobs_is_ok() {
        assert!(run(&["knobs".into()]).is_ok());
    }

    #[test]
    fn demo_synth_evaluate_roundtrip() {
        let dir = std::env::temp_dir().join("daisy-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let real = dir.join("real.csv").to_string_lossy().to_string();
        let fake = dir.join("fake.csv").to_string_lossy().to_string();
        run(&[
            "demo".into(),
            "--out".into(),
            real.clone(),
            "--rows".into(),
            "300".into(),
            "--dataset".into(),
            "HTRU2".into(),
        ])
        .unwrap();
        run(&[
            "synth".into(),
            real.clone(),
            "--label".into(),
            "label".into(),
            "--out".into(),
            fake.clone(),
            "--iterations".into(),
            "30".into(),
        ])
        .unwrap();
        run(&[
            "evaluate".into(),
            real.clone(),
            fake,
            "--label".into(),
            "label".into(),
        ])
        .unwrap();
        run(&["describe".into(), real, "--label".into(), "label".into()]).unwrap();
    }

    #[test]
    fn synth_save_then_generate() {
        let dir = std::env::temp_dir().join("daisy-cli-gen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let real = dir.join("real.csv").to_string_lossy().to_string();
        let model = dir.join("model.daisy").to_string_lossy().to_string();
        let out = dir.join("gen.csv").to_string_lossy().to_string();
        run(&["demo".into(), "--out".into(), real.clone(), "--rows".into(), "200".into(), "--dataset".into(), "HTRU2".into()]).unwrap();
        run(&["synth".into(), real, "--label".into(), "label".into(), "--out".into(), dir.join("f.csv").to_string_lossy().to_string(), "--iterations".into(), "20".into(), "--save".into(), model.clone()]).unwrap();
        run(&["generate".into(), model, "--out".into(), out.clone(), "--rows".into(), "50".into()]).unwrap();
        let n = std::fs::read_to_string(out).unwrap().lines().count();
        assert_eq!(n, 51); // header + 50 rows
    }

    #[test]
    fn ingest_builds_a_store_and_is_idempotent() {
        let dir = std::env::temp_dir().join("daisy-cli-ingest-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let real = dir.join("real.csv").to_string_lossy().to_string();
        let store = dir.join("store").to_string_lossy().to_string();
        run(&[
            "demo".into(),
            "--out".into(),
            real.clone(),
            "--rows".into(),
            "500".into(),
            "--dataset".into(),
            "HTRU2".into(),
        ])
        .unwrap();
        run(&[
            "ingest".into(),
            real.clone(),
            "--out".into(),
            store.clone(),
            "--label".into(),
            "label".into(),
            "--chunk-rows".into(),
            "128".into(),
        ])
        .unwrap();
        let opened = daisy::data::ChunkStore::open(std::path::Path::new(&store)).unwrap();
        assert_eq!(opened.n_rows(), 500);
        assert_eq!(opened.n_chunks(), 4);
        // A second run finds the Done record and changes nothing.
        run(&[
            "ingest".into(),
            real,
            "--out".into(),
            store,
            "--label".into(),
            "label".into(),
            "--chunk-rows".into(),
            "128".into(),
        ])
        .unwrap();
        // Missing input / missing --out are usage errors.
        assert!(run(&["ingest".into()]).is_err());
    }

    #[test]
    fn report_validates_and_renders_traces() {
        use daisy::telemetry::{field, Event};
        let dir = std::env::temp_dir().join("daisy-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl").to_string_lossy().to_string();
        let lines = [
            Event::new("train_start", vec![field("iterations", 2usize)]).to_json_line(0),
            Event::new(
                "epoch",
                vec![field("epoch", 0usize), field("d_loss", 0.5f64)],
            )
            .to_json_line(1),
        ];
        std::fs::write(&trace, lines.join("\n") + "\n").unwrap();
        run(&["report".into(), trace.clone()]).unwrap();
        run(&["report".into(), trace.clone(), "--validate".into()]).unwrap();
        let bad = dir.join("bad.jsonl").to_string_lossy().to_string();
        std::fs::write(&bad, "not json\n").unwrap();
        assert!(run(&["report".into(), bad]).is_err());
        assert!(run(&["report".into()]).is_err());
    }

    #[test]
    fn report_tolerates_a_torn_final_line() {
        use daisy::telemetry::{field, Event};
        let dir = std::env::temp_dir().join("daisy-cli-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("torn.jsonl").to_string_lossy().to_string();
        let whole = Event::new("train_start", vec![field("iterations", 2usize)]).to_json_line(0);
        // A crash mid-write leaves a prefix of the second line.
        let torn = &whole[..whole.len() / 2];
        std::fs::write(&trace, format!("{whole}\n{torn}")).unwrap();
        run(&["report".into(), trace.clone()]).unwrap();
        run(&["report".into(), trace, "--validate".into()]).unwrap();
        // Garbage before the final line is still a hard error.
        let bad = dir.join("midfile.jsonl").to_string_lossy().to_string();
        std::fs::write(&bad, format!("{torn}\n{whole}\n")).unwrap();
        assert!(run(&["report".into(), bad]).is_err());
    }

    #[test]
    fn top_renders_a_trace_offline() {
        use daisy::telemetry::{field, Event};
        let dir = std::env::temp_dir().join("daisy-cli-top-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl").to_string_lossy().to_string();
        let line = Event::new("profile", vec![field("fit.calls", 1.0f64)])
            .non_deterministic()
            .to_json_line(0);
        std::fs::write(&trace, line + "\n").unwrap();
        run(&["top".into(), "--trace".into(), trace]).unwrap();
        // Live mode needs an address; a missing one is a usage error.
        assert!(run(&["top".into()]).is_err());
        assert!(run(&["top".into(), "--interval".into(), "0".into(), "x".into()]).is_err());
    }

    #[test]
    fn parse_usize_messages() {
        assert_eq!(parse_usize("42", "x").unwrap(), 42);
        assert!(parse_usize("nope", "x").is_err());
    }
}
